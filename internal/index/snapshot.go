package index

import (
	"hacfs/internal/bitset"
	"hacfs/internal/vfs"
)

// Snapshot is an epoch-pinned read view of the index: the set of
// segments resident when it was taken, with the active segment capped
// at its committed length. A multi-call query evaluation (one Lookup
// per term, then Paths) sees a single consistent ID space even while a
// merge commits concurrently — the snapshot keeps references to the
// pinned segments, which a merge retires but never mutates.
//
// Liveness is read at call time, not pin time: a document deleted after
// the pin stops matching. What the snapshot freezes is the segment set
// — the ID space — not the tombstone state, which is exactly what a
// consistent bitmap intersection needs.
type Snapshot struct {
	ix        *Index
	epoch     uint64
	segs      []*segment // sealed (pin order) then active
	bySeg     map[uint32]*segment
	activeID  uint32
	activeLen int // committed docs in the active segment at pin time
}

// Snapshot pins the current segment set.
func (ix *Index) Snapshot() *Snapshot {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	sn := &Snapshot{
		ix:        ix,
		epoch:     ix.epoch,
		bySeg:     make(map[uint32]*segment, len(ix.sealed)+1),
		activeID:  ix.active.id,
		activeLen: len(ix.active.docs),
	}
	for _, s := range ix.sealed {
		sn.segs = append(sn.segs, s)
		sn.bySeg[s.id] = s
	}
	sn.segs = append(sn.segs, ix.active)
	sn.bySeg[ix.active.id] = ix.active
	return sn
}

// Epoch returns the merge epoch the snapshot pinned.
func (sn *Snapshot) Epoch() uint64 { return sn.epoch }

// cap limits a result bitmap of segment s to the slots committed at pin
// time (only the active segment can have grown since).
func (sn *Snapshot) capSeg(s *segment, bm *bitset.Bitmap) *bitset.Bitmap {
	if s.id == sn.activeID {
		bm.Trim(sn.activeLen)
	}
	return bm
}

func (sn *Snapshot) segLen(s *segment) int {
	if s.id == sn.activeID {
		return sn.activeLen
	}
	return len(s.docs)
}

// Lookup returns the live documents containing term, within the pinned
// segment set.
func (sn *Snapshot) Lookup(term string) *bitset.Segmented {
	term = normalizeTerm(term)
	out := bitset.NewSegmented()
	sn.ix.mu.RLock()
	defer sn.ix.mu.RUnlock()
	for _, s := range sn.segs {
		if bm, ok := s.postings[term]; ok {
			live := bm.Clone()
			live.AndNot(s.dead)
			out.PutSeg(s.id, sn.capSeg(s, live))
		}
	}
	return out
}

// LookupPrefix returns the live documents containing any term with the
// given prefix.
func (sn *Snapshot) LookupPrefix(prefix string) *bitset.Segmented {
	prefix = normalizeTerm(prefix)
	out := bitset.NewSegmented()
	sn.ix.mu.RLock()
	defer sn.ix.mu.RUnlock()
	for _, s := range sn.segs {
		var acc *bitset.Bitmap
		for term, bm := range s.postings {
			if len(term) >= len(prefix) && term[:len(prefix)] == prefix {
				if acc == nil {
					acc = bm.Clone()
				} else {
					acc.Or(bm)
				}
			}
		}
		if acc != nil {
			acc.AndNot(s.dead)
			out.PutSeg(s.id, sn.capSeg(s, acc))
		}
	}
	return out
}

// LookupFuzzy returns the live documents containing any term within
// edit distance 1 of term.
func (sn *Snapshot) LookupFuzzy(term string) *bitset.Segmented {
	term = normalizeTerm(term)
	out := bitset.NewSegmented()
	if term == "" {
		return out
	}
	sn.ix.mu.RLock()
	defer sn.ix.mu.RUnlock()
	for _, s := range sn.segs {
		var acc *bitset.Bitmap
		for candidate, bm := range s.postings {
			if withinOneEdit(term, candidate) {
				if acc == nil {
					acc = bm.Clone()
				} else {
					acc.Or(bm)
				}
			}
		}
		if acc != nil {
			acc.AndNot(s.dead)
			out.PutSeg(s.id, sn.capSeg(s, acc))
		}
	}
	return out
}

// AllDocs returns all live documents in the pinned set.
func (sn *Snapshot) AllDocs() *bitset.Segmented {
	out := bitset.NewSegmented()
	sn.ix.mu.RLock()
	defer sn.ix.mu.RUnlock()
	for _, s := range sn.segs {
		out.PutSeg(s.id, sn.capSeg(s, s.aliveLocal()))
	}
	return out
}

// DocsUnder returns the live documents under root, within the pinned
// set.
func (sn *Snapshot) DocsUnder(root string) *bitset.Segmented {
	out := bitset.NewSegmented()
	sn.ix.mu.RLock()
	defer sn.ix.mu.RUnlock()
	for _, s := range sn.segs {
		n := sn.segLen(s)
		if root == "/" {
			bm := s.aliveLocal()
			bm.Trim(n)
			out.PutSeg(s.id, bm)
			continue
		}
		var bm *bitset.Bitmap
		for local := 0; local < n; local++ {
			d := s.docs[local]
			if d.alive && vfs.HasPrefix(d.path, root) {
				if bm == nil {
					bm = bitset.NewBitmap(n)
				}
				bm.Add(uint32(local))
			}
		}
		if bm != nil {
			out.PutSeg(s.id, bm)
		}
	}
	return out
}

// Paths maps a result set to its sorted document paths. IDs outside the
// pinned set are resolved through the index's forward tables first, so
// mixing an older result into a newer snapshot degrades gracefully.
func (sn *Snapshot) Paths(res *bitset.Segmented) []string {
	sn.ix.mu.RLock()
	defer sn.ix.mu.RUnlock()
	out := make([]string, 0, res.Len())
	res.Range(func(id uint64) bool {
		seg, local := splitID(id)
		if s, ok := sn.bySeg[seg]; ok {
			if int(local) < sn.segLen(s) && s.docs[local].alive {
				out = append(out, s.docs[local].path)
			}
			return true
		}
		if s, local2, ok := sn.ix.resolveLocked(id); ok && s.docs[local2].alive {
			out = append(out, s.docs[local2].path)
		}
		return true
	})
	sortStrings(out)
	return out
}

// PathOf resolves one pinned ID to its path.
func (sn *Snapshot) PathOf(id DocID) (string, bool) {
	sn.ix.mu.RLock()
	defer sn.ix.mu.RUnlock()
	seg, local := splitID(id)
	if s, ok := sn.bySeg[seg]; ok {
		if int(local) < sn.segLen(s) && s.docs[local].alive {
			return s.docs[local].path, true
		}
		return "", false
	}
	if s, l, ok := sn.ix.resolveLocked(id); ok && s.docs[l].alive {
		return s.docs[l].path, true
	}
	return "", false
}

// IDOf resolves a path to a document ID within the pinned segment set.
// If the document moved to a post-pin segment (a merge committed after
// the snapshot was taken), the ID is mapped back through the merged
// segments' provenance tables so it stays comparable with the
// snapshot's other results.
func (sn *Snapshot) IDOf(path string) (DocID, bool) {
	sn.ix.mu.RLock()
	defer sn.ix.mu.RUnlock()
	id, ok := sn.ix.byPath[path]
	if !ok {
		return 0, false
	}
	// The byPath entry may lag a merge commit (the repoint is batched);
	// canonicalize it forward to a resident slot before mapping it back
	// into the pinned set through the provenance chains.
	if s, local, ok := sn.ix.resolveLocked(id); ok {
		id = makeID(s.id, local)
	}
	for hops := 0; hops < 64; hops++ {
		seg, local := splitID(id)
		if s, ok := sn.bySeg[seg]; ok {
			if int(local) >= sn.segLen(s) {
				return 0, false // committed after the pin
			}
			return id, true
		}
		s, ok := sn.ix.bySeg[seg]
		if !ok || s.prev == nil || int(local) >= len(s.prev) {
			return 0, false
		}
		id = s.prev[local]
	}
	return 0, false
}

// IDsOf maps paths to their pinned document IDs (see IDOf).
func (sn *Snapshot) IDsOf(paths []string) *bitset.Segmented {
	out := bitset.NewSegmented()
	for _, p := range paths {
		if id, ok := sn.IDOf(p); ok {
			out.Add(id)
		}
	}
	return out
}
