package index

import (
	gopath "path"

	"hacfs/internal/bitset"
)

// Snapshot is an epoch-pinned read view of the index: the set of
// segments resident when it was taken, with the active segment capped
// at its committed length. A multi-call query evaluation (one Lookup
// per term, then Paths) sees a single consistent ID space even while a
// merge commits concurrently — the snapshot keeps references to the
// pinned segments, which a merge retires but never mutates.
//
// Liveness is read at call time, not pin time: a document deleted after
// the pin stops matching. What the snapshot freezes is the segment set
// — the ID space — not the tombstone state, which is exactly what a
// consistent bitmap intersection needs.
type Snapshot struct {
	ix        *Index
	epoch     uint64
	version   uint64
	segs      []*segment // sealed (pin order) then active
	bySeg     map[uint32]*segment
	activeID  uint32
	activeLen int // committed docs in the active segment at pin time
}

// Snapshot pins the current segment set.
func (ix *Index) Snapshot() *Snapshot {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	sn := &Snapshot{
		ix:        ix,
		epoch:     ix.epoch,
		version:   ix.version.Load(),
		bySeg:     make(map[uint32]*segment, len(ix.sealed)+1),
		activeID:  ix.active.id,
		activeLen: len(ix.active.docs),
	}
	for _, s := range ix.sealed {
		sn.segs = append(sn.segs, s)
		sn.bySeg[s.id] = s
	}
	sn.segs = append(sn.segs, ix.active)
	sn.bySeg[ix.active.id] = ix.active
	return sn
}

// Epoch returns the merge epoch the snapshot pinned.
func (sn *Snapshot) Epoch() uint64 { return sn.epoch }

// Version returns the index mutation counter at pin time. Two
// snapshots with equal versions answer every query identically, which
// is what the planner's result cache keys on.
func (sn *Snapshot) Version() uint64 { return sn.version }

// cap limits a result bitmap of segment s to the slots committed at pin
// time (only the active segment can have grown since).
func (sn *Snapshot) capSeg(s *segment, bm *bitset.Bitmap) *bitset.Bitmap {
	if s.id == sn.activeID {
		bm.Trim(sn.activeLen)
	}
	return bm
}

func (sn *Snapshot) segLen(s *segment) int {
	if s.id == sn.activeID {
		return sn.activeLen
	}
	return len(s.docs)
}

// Lookup returns the live documents containing term, within the pinned
// segment set.
func (sn *Snapshot) Lookup(term string) *bitset.Segmented {
	term = normalizeTerm(term)
	out := bitset.NewSegmented()
	sn.ix.mu.RLock()
	defer sn.ix.mu.RUnlock()
	for _, s := range sn.segs {
		if bm, ok := s.postings[term]; ok {
			live := bm.Clone()
			live.AndNot(s.dead)
			out.PutSeg(s.id, sn.capSeg(s, live))
		}
	}
	return out
}

// LookupPrefix returns the live documents containing any term with the
// given prefix.
func (sn *Snapshot) LookupPrefix(prefix string) *bitset.Segmented {
	prefix = normalizeTerm(prefix)
	out := bitset.NewSegmented()
	sn.ix.mu.RLock()
	defer sn.ix.mu.RUnlock()
	for _, s := range sn.segs {
		var acc *bitset.Bitmap
		or := func(bm *bitset.Bitmap) {
			if acc == nil {
				acc = bm.Clone()
			} else {
				acc.Or(bm)
			}
		}
		if s.sealed {
			s.dictionary().prefixRange(prefix, func(term string) { or(s.postings[term]) })
		} else {
			for term, bm := range s.postings {
				if len(term) >= len(prefix) && term[:len(prefix)] == prefix {
					or(bm)
				}
			}
		}
		if acc != nil {
			acc.AndNot(s.dead)
			out.PutSeg(s.id, sn.capSeg(s, acc))
		}
	}
	return out
}

// LookupFuzzy returns the live documents containing any term within
// edit distance 1 of term.
func (sn *Snapshot) LookupFuzzy(term string) *bitset.Segmented {
	term = normalizeTerm(term)
	out := bitset.NewSegmented()
	if term == "" {
		return out
	}
	sn.ix.mu.RLock()
	defer sn.ix.mu.RUnlock()
	for _, s := range sn.segs {
		var acc *bitset.Bitmap
		or := func(bm *bitset.Bitmap) {
			if acc == nil {
				acc = bm.Clone()
			} else {
				acc.Or(bm)
			}
		}
		if s.sealed {
			s.dictionary().fuzzyCandidates(term, func(c string) { or(s.postings[c]) })
		} else {
			for candidate, bm := range s.postings {
				if withinOneEdit(term, candidate) {
					or(bm)
				}
			}
		}
		if acc != nil {
			acc.AndNot(s.dead)
			out.PutSeg(s.id, sn.capSeg(s, acc))
		}
	}
	return out
}

// AllDocs returns all live documents in the pinned set.
func (sn *Snapshot) AllDocs() *bitset.Segmented {
	out := bitset.NewSegmented()
	sn.ix.mu.RLock()
	defer sn.ix.mu.RUnlock()
	for _, s := range sn.segs {
		out.PutSeg(s.id, sn.capSeg(s, s.aliveLocal()))
	}
	return out
}

// DocsUnder returns the live documents under root, within the pinned
// set. Non-"/" roots resolve through the per-segment composite dirs
// index (dirs.go): one map probe per segment instead of a scan over
// every doc entry.
func (sn *Snapshot) DocsUnder(root string) *bitset.Segmented {
	root = gopath.Clean(root)
	out := bitset.NewSegmented()
	sn.ix.mu.RLock()
	defer sn.ix.mu.RUnlock()
	if root == "/" {
		for _, s := range sn.segs {
			bm := s.aliveLocal()
			bm.Trim(sn.segLen(s))
			out.PutSeg(s.id, bm)
		}
		return out
	}
	selfID, selfOK := sn.idOfLocked(root)
	for _, s := range sn.segs {
		scope := sn.scopeLocalLocked(s, root, selfID, selfOK)
		if scope == nil {
			continue
		}
		if s.deadCount > 0 {
			scope.AndNotBitmap(s.dead)
		}
		if s.id == sn.activeID {
			scope.Trim(sn.activeLen)
		}
		out.PutSegContainer(s.id, scope)
	}
	return out
}

// scopeLocalLocked returns a fresh container of s's local slots under
// root (alive or dead; caller applies the dead mask), or nil when the
// segment holds none. selfID/selfOK name the pinned document at exactly
// root, if any — vfs.HasPrefix(p, root) matches p == root, so a file
// path used as a scope selects the file itself. Caller holds ix.mu.
func (sn *Snapshot) scopeLocalLocked(s *segment, root string, selfID DocID, selfOK bool) *bitset.Container {
	var scope *bitset.Container
	if c, ok := s.dirs[root]; ok {
		scope = c.Clone()
	}
	if selfOK {
		if seg, local := splitID(selfID); seg == s.id {
			if scope == nil {
				scope = bitset.NewContainer()
			}
			scope.Add(local)
		}
	}
	return scope
}

// LookupUnder returns the live documents containing term whose path
// lies under root, touching only in-scope postings — the composite
// path-prefix × term lookup. The second result counts the posting
// entries the scope pruning avoided examining (whole segments whose
// dirs map lacks root count all their postings; intersected segments
// count the postings beyond the scope's cardinality).
func (sn *Snapshot) LookupUnder(term, root string) (*bitset.Segmented, int) {
	root = gopath.Clean(root)
	if root == "/" {
		return sn.Lookup(term), 0
	}
	term = normalizeTerm(term)
	out := bitset.NewSegmented()
	skipped := 0
	sn.ix.mu.RLock()
	defer sn.ix.mu.RUnlock()
	selfID, selfOK := sn.idOfLocked(root)
	for _, s := range sn.segs {
		bm, ok := s.postings[term]
		if !ok {
			continue
		}
		scope := sn.scopeLocalLocked(s, root, selfID, selfOK)
		if scope == nil {
			skipped += bm.Len() // whole segment out of scope
			continue
		}
		if d := bm.Len() - scope.Len(); d > 0 {
			skipped += d
		}
		scope.AndBitmap(bm)
		if s.deadCount > 0 {
			scope.AndNotBitmap(s.dead)
		}
		if s.id == sn.activeID {
			scope.Trim(sn.activeLen)
		}
		out.PutSegContainer(s.id, scope)
	}
	return out, skipped
}

// TermCost returns the total posting cardinality of term across the
// pinned segments — the planner's per-term selectivity estimate. Dead
// slots are counted (they cost iteration work even though they are
// filtered), which keeps the estimate one map probe per segment.
func (sn *Snapshot) TermCost(term string) int {
	term = normalizeTerm(term)
	n := 0
	sn.ix.mu.RLock()
	defer sn.ix.mu.RUnlock()
	for _, s := range sn.segs {
		if bm, ok := s.postings[term]; ok {
			n += bm.Len()
		}
	}
	return n
}

// ScopeCost returns how many slots lie under root across the pinned
// segments (dead included) — the planner's scope selectivity estimate.
func (sn *Snapshot) ScopeCost(root string) int {
	root = gopath.Clean(root)
	sn.ix.mu.RLock()
	defer sn.ix.mu.RUnlock()
	if root == "/" {
		n := 0
		for _, s := range sn.segs {
			n += sn.segLen(s)
		}
		return n
	}
	n := 0
	for _, s := range sn.segs {
		if c, ok := s.dirs[root]; ok {
			n += c.Len()
		}
	}
	return n
}

// Paths maps a result set to its sorted document paths. IDs outside the
// pinned set are resolved through the index's forward tables first, so
// mixing an older result into a newer snapshot degrades gracefully.
func (sn *Snapshot) Paths(res *bitset.Segmented) []string {
	sn.ix.mu.RLock()
	defer sn.ix.mu.RUnlock()
	out := make([]string, 0, res.Len())
	res.Range(func(id uint64) bool {
		seg, local := splitID(id)
		if s, ok := sn.bySeg[seg]; ok {
			if int(local) < sn.segLen(s) && s.docs[local].alive {
				out = append(out, s.docs[local].path)
			}
			return true
		}
		if s, local2, ok := sn.ix.resolveLocked(id); ok && s.docs[local2].alive {
			out = append(out, s.docs[local2].path)
		}
		return true
	})
	sortStrings(out)
	return out
}

// PathsOf maps a batch of pinned IDs to their paths, in input order,
// skipping IDs that no longer resolve to a live document. Unlike Paths
// it does not sort — the paged SearchResult iterator materializes one
// page at a time in ID order, and sorting would force the whole result
// set eager again.
func (sn *Snapshot) PathsOf(ids []DocID) []string {
	sn.ix.mu.RLock()
	defer sn.ix.mu.RUnlock()
	out := make([]string, 0, len(ids))
	for _, id := range ids {
		seg, local := splitID(id)
		if s, ok := sn.bySeg[seg]; ok {
			if int(local) < sn.segLen(s) && s.docs[local].alive {
				out = append(out, s.docs[local].path)
			}
			continue
		}
		if s, l, ok := sn.ix.resolveLocked(id); ok && s.docs[l].alive {
			out = append(out, s.docs[l].path)
		}
	}
	return out
}

// PathOf resolves one pinned ID to its path.
func (sn *Snapshot) PathOf(id DocID) (string, bool) {
	sn.ix.mu.RLock()
	defer sn.ix.mu.RUnlock()
	seg, local := splitID(id)
	if s, ok := sn.bySeg[seg]; ok {
		if int(local) < sn.segLen(s) && s.docs[local].alive {
			return s.docs[local].path, true
		}
		return "", false
	}
	if s, l, ok := sn.ix.resolveLocked(id); ok && s.docs[l].alive {
		return s.docs[l].path, true
	}
	return "", false
}

// IDOf resolves a path to a document ID within the pinned segment set.
// If the document moved to a post-pin segment (a merge committed after
// the snapshot was taken), the ID is mapped back through the merged
// segments' provenance tables so it stays comparable with the
// snapshot's other results.
func (sn *Snapshot) IDOf(path string) (DocID, bool) {
	sn.ix.mu.RLock()
	defer sn.ix.mu.RUnlock()
	return sn.idOfLocked(path)
}

// idOfLocked is IDOf with ix.mu already held.
func (sn *Snapshot) idOfLocked(path string) (DocID, bool) {
	id, ok := sn.ix.byPath[path]
	if !ok {
		return 0, false
	}
	// The byPath entry may lag a merge commit (the repoint is batched);
	// canonicalize it forward to a resident slot before mapping it back
	// into the pinned set through the provenance chains.
	if s, local, ok := sn.ix.resolveLocked(id); ok {
		id = makeID(s.id, local)
	}
	for hops := 0; hops < 64; hops++ {
		seg, local := splitID(id)
		if s, ok := sn.bySeg[seg]; ok {
			if int(local) >= sn.segLen(s) {
				return 0, false // committed after the pin
			}
			return id, true
		}
		s, ok := sn.ix.bySeg[seg]
		if !ok || s.prev == nil || int(local) >= len(s.prev) {
			return 0, false
		}
		id = s.prev[local]
	}
	return 0, false
}

// IDsOf maps paths to their pinned document IDs (see IDOf).
func (sn *Snapshot) IDsOf(paths []string) *bitset.Segmented {
	out := bitset.NewSegmented()
	for _, p := range paths {
		if id, ok := sn.IDOf(p); ok {
			out.Add(id)
		}
	}
	return out
}
