package index

import (
	"reflect"
	"sort"
	"testing"
)

func TestEmailTransducer(t *testing.T) {
	content := []byte("from alice\nto bob\nsubject project status\n\nbody mentions carol from nowhere\n")
	got := EmailTransducer("/mail/m1.eml", content)
	sort.Strings(got)
	want := []string{"from:alice", "subject:project", "subject:status", "to:bob"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("EmailTransducer = %v, want %v", got, want)
	}
}

func TestEmailTransducerColonHeaders(t *testing.T) {
	content := []byte("From: Alice Smith\nTo: bob\n\nbody\n")
	got := EmailTransducer("/m.eml", content)
	has := map[string]bool{}
	for _, g := range got {
		has[g] = true
	}
	if !has["from:alice"] || !has["from:smith"] || !has["to:bob"] {
		t.Fatalf("colon-header attrs = %v", got)
	}
}

func TestEmailTransducerStopsAtBlankLine(t *testing.T) {
	content := []byte("from alice\n\nfrom mallory in the body\n")
	got := EmailTransducer("/m.eml", content)
	for _, g := range got {
		if g == "from:mallory" {
			t.Fatal("transducer read past the header block")
		}
	}
}

func TestPathTransducer(t *testing.T) {
	got := PathTransducer("/src/fingerprint-match.c", nil)
	has := map[string]bool{}
	for _, g := range got {
		has[g] = true
	}
	for _, want := range []string{"ext:c", "name:fingerprint", "name:match"} {
		if !has[want] {
			t.Fatalf("PathTransducer = %v, missing %s", got, want)
		}
	}
	if got := PathTransducer("/noext", nil); len(got) != 1 || got[0] != "name:noext" {
		t.Fatalf("no-extension attrs = %v", got)
	}
}

func TestSourceTransducer(t *testing.T) {
	content := []byte("#include <stdio.h>\n  #include \"util.h\"\nint main() {}\n")
	got := SourceTransducer("/a.c", content)
	has := map[string]bool{}
	for _, g := range got {
		has[g] = true
	}
	for _, want := range []string{"lang:c", "include:stdio", "include:util"} {
		if !has[want] {
			t.Fatalf("SourceTransducer = %v, missing %s", got, want)
		}
	}
}

func TestTransducerIndexIntegration(t *testing.T) {
	ix := New()
	ix.RegisterTransducer(".eml", EmailTransducer)
	ix.RegisterTransducer("", PathTransducer)

	ix.Add("/mail/hello.eml", []byte("from alice\n\nhello there\n"))
	ix.Add("/mail/other.eml", []byte("from bob\n\nhello again\n"))
	ix.Add("/notes/plain.txt", []byte("from alice in content only"))

	// Attribute query hits only the email with the matching header.
	if got := ix.Paths(ix.Lookup("from:alice")); len(got) != 1 || got[0] != "/mail/hello.eml" {
		t.Fatalf("from:alice = %v", got)
	}
	// Plain words still work, including in non-email files.
	if got := ix.Lookup("alice").Len(); got != 2 {
		t.Fatalf("alice matches %d, want 2", got)
	}
	// Path attributes from the catch-all transducer.
	if got := ix.Lookup("ext:eml").Len(); got != 2 {
		t.Fatalf("ext:eml matches %d", got)
	}
	if got := ix.Paths(ix.Lookup("name:plain")); len(got) != 1 {
		t.Fatalf("name:plain = %v", got)
	}
}

func TestTransducerCaseInsensitiveExt(t *testing.T) {
	ix := New()
	ix.RegisterTransducer(".EML", EmailTransducer)
	ix.Add("/m.eml", []byte("from alice\n\nx\n"))
	if !ix.Lookup("from:alice").Any() {
		t.Fatal("uppercase extension registration not matched")
	}
}

func TestPathExt(t *testing.T) {
	cases := map[string]string{
		"/a/b.txt":   ".txt",
		"/a/b":       "",
		"/a.d/b":     "",
		"/a/b.c.eml": ".eml",
		"b.go":       ".go",
	}
	for in, want := range cases {
		if got := pathExt(in); got != want {
			t.Errorf("pathExt(%q) = %q, want %q", in, got, want)
		}
	}
}
