package index

import "hacfs/internal/obs"

// ixMetrics is the index's metric handle bundle. Handles are nil (and
// every record a no-op) until SetObserver is called, so a standalone
// Index works unchanged without observability.
type ixMetrics struct {
	docsIndexed *obs.Counter // index_docs_indexed_total
	docsRemoved *obs.Counter // index_docs_removed_total
}

// SetObserver directs the index's metrics to o: commit/tombstone
// counters plus scrape-time gauges for the live document count, the
// distinct-term count and the approximate postings footprint. Called by
// hac.New; safe to call again to redirect.
func (ix *Index) SetObserver(o *obs.Observer) {
	r := o.Registry()
	ix.mu.Lock()
	ix.met = ixMetrics{
		docsIndexed: r.Counter("index_docs_indexed_total"),
		docsRemoved: r.Counter("index_docs_removed_total"),
	}
	ix.mu.Unlock()
	if r == nil {
		return
	}
	r.GaugeFunc("index_docs", func() float64 {
		return float64(ix.NumDocs())
	})
	r.GaugeFunc("index_terms", func() float64 {
		ix.mu.RLock()
		defer ix.mu.RUnlock()
		return float64(len(ix.postings))
	})
	r.GaugeFunc("index_postings_bytes", func() float64 {
		return float64(ix.Stats().IndexBytes)
	})
}
