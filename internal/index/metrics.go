package index

import "hacfs/internal/obs"

// ixMetrics is the index's metric handle bundle. Handles are nil (and
// every record a no-op) until SetObserver is called, so a standalone
// Index works unchanged without observability.
type ixMetrics struct {
	docsIndexed  *obs.Counter   // index_docs_indexed_total
	docsRemoved  *obs.Counter   // index_docs_removed_total
	merges       *obs.Counter   // index_merges_total
	mergeSeconds *obs.Histogram // index_merge_seconds
	mergeAmp     *obs.Histogram // index_merge_amplification (input slots / output docs)
}

// SetObserver directs the index's metrics to o: commit/tombstone/merge
// counters, merge duration and write-amplification histograms, plus
// scrape-time gauges for the live document count, the distinct-term
// count, the approximate postings footprint, the resident segment count
// and the live ratio (live docs / ID-space slots — low values mean
// compaction is overdue). Called by hac.New; safe to call again to
// redirect.
func (ix *Index) SetObserver(o *obs.Observer) {
	r := o.Registry()
	ix.mu.Lock()
	ix.met = ixMetrics{
		docsIndexed:  r.Counter("index_docs_indexed_total"),
		docsRemoved:  r.Counter("index_docs_removed_total"),
		merges:       r.Counter("index_merges_total"),
		mergeSeconds: r.Histogram("index_merge_seconds", obs.DefLatencyBuckets),
		mergeAmp:     r.Histogram("index_merge_amplification", obs.DefWidthBuckets),
	}
	ix.mu.Unlock()
	if r == nil {
		return
	}
	r.GaugeFunc("index_docs", func() float64 {
		return float64(ix.NumDocs())
	})
	r.GaugeFunc("index_terms", func() float64 {
		return float64(ix.Stats().Terms)
	})
	r.GaugeFunc("index_postings_bytes", func() float64 {
		return float64(ix.Stats().IndexBytes)
	})
	r.GaugeFunc("index_segments", func() float64 {
		ix.mu.RLock()
		defer ix.mu.RUnlock()
		return float64(len(ix.sealed) + 1)
	})
	r.GaugeFunc("index_live_ratio", func() float64 {
		ix.mu.RLock()
		defer ix.mu.RUnlock()
		if ix.totalSlots == 0 {
			return 1
		}
		return float64(ix.liveDocs) / float64(ix.totalSlots)
	})
}
