// Package index implements the content-based access (CBA) engine HAC
// delegates searches to — the role Glimpse played in the paper. It is a
// classic in-memory inverted index: documents are tokenized into terms
// and each term maps to a bitmap of document IDs.
//
// The paper's data-consistency model (§2.4) shapes the API: documents
// can be added and updated incrementally, removals are tombstoned, and
// a periodic Compact (the paper's "reindexing") rebuilds the ID space
// and settles everything. SyncTree walks a file system and performs the
// incremental reindex the paper describes ("re-index the file system
// periodically ... or on user request, for any part of the file
// system").
package index

import (
	"sync"
	"sync/atomic"
	"time"

	"hacfs/internal/bitset"
	"hacfs/internal/vfs"
)

// DocID identifies an indexed document. IDs are dense and stable until
// the next Compact.
type DocID = uint32

type docEntry struct {
	path    string
	modTime time.Time
	size    int
	alive   bool
}

// Index is an inverted index over documents named by path. It is safe
// for concurrent use.
type Index struct {
	mu       sync.RWMutex
	docs     []docEntry
	byPath   map[string]DocID
	postings map[string]*bitset.Bitmap
	alive    *bitset.Bitmap
	deadDocs int
	tok      Tokenizer
	// transducers, keyed by lowercase file extension ("" = all files),
	// add attribute terms alongside the tokenizer's words.
	transducers map[string][]Transducer
	met         ixMetrics
}

// Tokenizer splits document content into terms. The default is
// Tokenize.
type Tokenizer func(content []byte) []string

// New returns an empty index using the default tokenizer.
func New() *Index {
	return &Index{
		byPath:   make(map[string]DocID),
		postings: make(map[string]*bitset.Bitmap),
		alive:    bitset.NewBitmap(0),
		tok:      Tokenize,
	}
}

// SetTokenizer replaces the tokenizer. It must be called before any
// documents are added.
func (ix *Index) SetTokenizer(t Tokenizer) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	ix.tok = t
}

// Add indexes content under path, replacing any previous document at
// the same path, and returns the document's ID.
func (ix *Index) Add(path string, content []byte) DocID {
	return ix.AddWithTime(path, content, time.Time{})
}

// AddWithTime is Add recording the document's modification time, used
// by SyncTree to detect staleness.
func (ix *Index) AddWithTime(path string, content []byte, modTime time.Time) DocID {
	return ix.commitDoc(ix.prepareDoc(path, content, modTime))
}

// preparedDoc is a tokenized document awaiting its single-writer merge
// into the index. Preparation (the expensive part: tokenization plus
// transducers) runs without the index write lock, so many documents can
// be prepared concurrently and committed by one writer.
type preparedDoc struct {
	path    string
	modTime time.Time
	size    int
	terms   map[string]struct{}
}

// prepareDoc tokenizes content and runs the transducers. It does not
// take the write lock and is safe to call from many goroutines.
func (ix *Index) prepareDoc(path string, content []byte, modTime time.Time) preparedDoc {
	terms := ix.termSet(content)
	for _, t := range ix.applyTransducers(path, content) {
		terms[t] = struct{}{}
	}
	return preparedDoc{path: path, modTime: modTime, size: len(content), terms: terms}
}

// commitDoc merges one prepared document under the write lock. Commit
// order determines document IDs, so a deterministic caller must commit
// in a deterministic order.
func (ix *Index) commitDoc(d preparedDoc) DocID {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if old, ok := ix.byPath[d.path]; ok {
		ix.tombstone(old)
	}
	id := DocID(len(ix.docs))
	ix.docs = append(ix.docs, docEntry{path: d.path, modTime: d.modTime, size: d.size, alive: true})
	ix.byPath[d.path] = id
	ix.alive.Add(id)
	for term := range d.terms {
		bm, ok := ix.postings[term]
		if !ok {
			bm = bitset.NewBitmap(0)
			ix.postings[term] = bm
		}
		bm.Add(id)
	}
	ix.met.docsIndexed.Add(1)
	return id
}

// termSet tokenizes content into a set of unique terms.
func (ix *Index) termSet(content []byte) map[string]struct{} {
	terms := ix.tok(content)
	set := make(map[string]struct{}, len(terms))
	for _, t := range terms {
		set[t] = struct{}{}
	}
	return set
}

// tombstone marks id dead. Caller holds ix.mu.
func (ix *Index) tombstone(id DocID) {
	if int(id) < len(ix.docs) && ix.docs[id].alive {
		ix.docs[id].alive = false
		ix.alive.Remove(id)
		ix.deadDocs++
		delete(ix.byPath, ix.docs[id].path)
		ix.met.docsRemoved.Add(1)
	}
}

// Remove deletes the document at path from the index. It reports
// whether a document was present.
func (ix *Index) Remove(path string) bool {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	id, ok := ix.byPath[path]
	if !ok {
		return false
	}
	ix.tombstone(id)
	return true
}

// RenamePath records that a document moved without content change.
func (ix *Index) RenamePath(oldPath, newPath string) bool {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	id, ok := ix.byPath[oldPath]
	if !ok {
		return false
	}
	delete(ix.byPath, oldPath)
	ix.docs[id].path = newPath
	ix.byPath[newPath] = id
	return true
}

// RenamePrefix records that the directory at oldRoot moved to newRoot,
// rewriting the paths of every indexed document beneath it. It returns
// the number of documents updated.
func (ix *Index) RenamePrefix(oldRoot, newRoot string) int {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	type move struct {
		old string
		id  DocID
	}
	var moves []move
	for p, id := range ix.byPath {
		if vfs.HasPrefix(p, oldRoot) {
			moves = append(moves, move{p, id})
		}
	}
	for _, m := range moves {
		np := newRoot + m.old[len(oldRoot):]
		delete(ix.byPath, m.old)
		ix.docs[m.id].path = np
		ix.byPath[np] = m.id
	}
	return len(moves)
}

// Lookup returns the set of live documents containing term. The result
// is owned by the caller.
func (ix *Index) Lookup(term string) *bitset.Bitmap {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	bm, ok := ix.postings[normalizeTerm(term)]
	if !ok {
		return bitset.NewBitmap(0)
	}
	out := bm.Clone()
	out.And(ix.alive)
	return out
}

// LookupPrefix returns the set of live documents containing any term
// with the given prefix (the query language's "foo*").
func (ix *Index) LookupPrefix(prefix string) *bitset.Bitmap {
	prefix = normalizeTerm(prefix)
	out := bitset.NewBitmap(0)
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	for term, bm := range ix.postings {
		if len(term) >= len(prefix) && term[:len(prefix)] == prefix {
			out.Or(bm)
		}
	}
	out.And(ix.alive)
	return out
}

// AllDocs returns the set of all live document IDs.
func (ix *Index) AllDocs() *bitset.Bitmap {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.alive.Clone()
}

// PathOf resolves a document ID to its path.
func (ix *Index) PathOf(id DocID) (string, bool) {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	if int(id) >= len(ix.docs) || !ix.docs[id].alive {
		return "", false
	}
	return ix.docs[id].path, true
}

// IDOf resolves a path to its live document ID.
func (ix *Index) IDOf(path string) (DocID, bool) {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	id, ok := ix.byPath[path]
	return id, ok
}

// Paths maps a result set to its sorted document paths. IDs that no
// longer resolve are skipped.
func (ix *Index) Paths(bm *bitset.Bitmap) []string {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	out := make([]string, 0, bm.Len())
	bm.Range(func(id uint32) bool {
		if int(id) < len(ix.docs) && ix.docs[id].alive {
			out = append(out, ix.docs[id].path)
		}
		return true
	})
	// docs are appended in ID order, not path order; sort for stable output.
	sortStrings(out)
	return out
}

// IDsOf maps paths to a bitmap of their live document IDs. Unindexed
// paths are skipped.
func (ix *Index) IDsOf(paths []string) *bitset.Bitmap {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	out := bitset.NewBitmap(len(ix.docs))
	for _, p := range paths {
		if id, ok := ix.byPath[p]; ok {
			out.Add(id)
		}
	}
	return out
}

// DocsUnder returns the set of live documents whose path lies in the
// subtree rooted at root. This is how a syntactic directory "provides a
// scope" to the semantic directories beneath it.
func (ix *Index) DocsUnder(root string) *bitset.Bitmap {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	out := bitset.NewBitmap(len(ix.docs))
	if root == "/" {
		out.Or(ix.alive)
		return out
	}
	for id, d := range ix.docs {
		if d.alive && vfs.HasPrefix(d.path, root) {
			out.Add(DocID(id))
		}
	}
	return out
}

// NumDocs returns the number of live documents.
func (ix *Index) NumDocs() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return len(ix.docs) - ix.deadDocs
}

// Universe returns the size of the current ID space (live + dead), the
// N in the paper's "N/8 bytes per semantic directory".
func (ix *Index) Universe() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return len(ix.docs)
}

// Stats describes the index footprint, for the Table 3 experiment.
type Stats struct {
	Docs         int   // live documents
	DeadDocs     int   // tombstoned documents awaiting Compact
	Terms        int   // distinct terms
	IndexBytes   int   // approximate index payload size
	ContentBytes int64 // total size of live indexed content
}

// Stats returns a snapshot of the index footprint.
func (ix *Index) Stats() Stats {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	s := Stats{
		Docs:     len(ix.docs) - ix.deadDocs,
		DeadDocs: ix.deadDocs,
		Terms:    len(ix.postings),
	}
	for term, bm := range ix.postings {
		s.IndexBytes += len(term) + bm.SizeBytes()
	}
	for _, d := range ix.docs {
		s.IndexBytes += len(d.path) + 32
		if d.alive {
			s.ContentBytes += int64(d.size)
		}
	}
	return s
}

// Compact rebuilds the index with a dense ID space, dropping
// tombstones. This is the paper's full "reindexing" step. It returns a
// mapping from old to new IDs (dead IDs map to NoDoc).
const NoDoc DocID = ^DocID(0)

func (ix *Index) Compact() map[DocID]DocID {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	remap := make(map[DocID]DocID, len(ix.docs))
	newDocs := make([]docEntry, 0, len(ix.docs)-ix.deadDocs)
	for id, d := range ix.docs {
		if d.alive {
			remap[DocID(id)] = DocID(len(newDocs))
			newDocs = append(newDocs, d)
		} else {
			remap[DocID(id)] = NoDoc
		}
	}
	newPostings := make(map[string]*bitset.Bitmap, len(ix.postings))
	for term, bm := range ix.postings {
		nb := bitset.NewBitmap(len(newDocs))
		bm.Range(func(old uint32) bool {
			if nid := remap[old]; nid != NoDoc {
				nb.Add(nid)
			}
			return true
		})
		if nb.Any() {
			newPostings[term] = nb
		}
	}
	ix.docs = newDocs
	ix.postings = newPostings
	ix.byPath = make(map[string]DocID, len(newDocs))
	ix.alive = bitset.NewBitmap(len(newDocs))
	for id, d := range ix.docs {
		ix.byPath[d.path] = DocID(id)
		ix.alive.Add(DocID(id))
	}
	ix.deadDocs = 0
	return remap
}

// SyncTreeParallel is SyncTree with file reads and tokenization fanned
// out over a pool of workers goroutines. A single writer merges the
// prepared documents in walk (sorted-path) order, so the resulting
// index — document IDs included — is identical to a serial SyncTree
// over the same tree. workers <= 1 falls back to the serial path.
func (ix *Index) SyncTreeParallel(fsys vfs.FileSystem, root string, workers int) (added, updated, removed int, err error) {
	if workers <= 1 {
		return ix.SyncTree(fsys, root)
	}

	// Phase 1: one cheap serial walk decides what needs (re)indexing.
	type job struct {
		path    string
		modTime time.Time
		existed bool
	}
	var jobs []job
	seen := make(map[string]bool)
	err = vfs.Walk(fsys, root, func(p string, info vfs.Info) error {
		if info.Type != vfs.TypeFile {
			return nil
		}
		seen[p] = true
		ix.mu.RLock()
		id, ok := ix.byPath[p]
		stale := ok && !ix.docs[id].modTime.Equal(info.ModTime)
		ix.mu.RUnlock()
		if ok && !stale {
			return nil
		}
		jobs = append(jobs, job{path: p, modTime: info.ModTime, existed: ok})
		return nil
	})
	if err != nil {
		return 0, 0, 0, err
	}

	// Phase 2+3: workers read and tokenize one bounded chunk at a
	// time; the chunk is then merged by a single writer in walk order,
	// which keeps document IDs deterministic. Chunking bounds how many
	// prepared term sets are alive at once — preparing the whole tree
	// before committing any of it made the heap (and GC time) grow
	// with the corpus, erasing the tokenization speedup.
	type prep struct {
		doc preparedDoc
		err error
	}
	chunk := 32 * workers
	preps := make([]prep, chunk)
	for lo := 0; lo < len(jobs); lo += chunk {
		hi := lo + chunk
		if hi > len(jobs) {
			hi = len(jobs)
		}
		var next atomic.Int64
		next.Store(int64(lo))
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= hi {
						return
					}
					content, err := fsys.ReadFile(jobs[i].path)
					if err != nil {
						preps[i-lo] = prep{err: err}
						continue
					}
					preps[i-lo] = prep{doc: ix.prepareDoc(jobs[i].path, content, jobs[i].modTime)}
				}
			}()
		}
		wg.Wait()
		for i := lo; i < hi; i++ {
			p := &preps[i-lo]
			if p.err != nil {
				return added, updated, removed, p.err
			}
			ix.commitDoc(p.doc)
			*p = prep{}
			if jobs[i].existed {
				updated++
			} else {
				added++
			}
		}
	}

	removed = ix.removeVanished(root, seen)
	return added, updated, removed, nil
}

// removeVanished drops indexed documents under root that are absent
// from seen, returning how many were removed.
func (ix *Index) removeVanished(root string, seen map[string]bool) int {
	ix.mu.RLock()
	var gone []string
	for p := range ix.byPath {
		if vfs.HasPrefix(p, root) && !seen[p] {
			gone = append(gone, p)
		}
	}
	ix.mu.RUnlock()
	removed := 0
	for _, p := range gone {
		if ix.Remove(p) {
			removed++
		}
	}
	return removed
}

// SyncTree incrementally reindexes all regular files under root in
// fsys: new files are added, files whose modification time changed are
// re-indexed, and indexed files that no longer exist under root are
// removed. It returns the number of added, updated and removed
// documents.
func (ix *Index) SyncTree(fsys vfs.FileSystem, root string) (added, updated, removed int, err error) {
	seen := make(map[string]bool)
	err = vfs.Walk(fsys, root, func(p string, info vfs.Info) error {
		if info.Type != vfs.TypeFile {
			return nil
		}
		seen[p] = true
		ix.mu.RLock()
		id, ok := ix.byPath[p]
		var stale bool
		if ok {
			stale = !ix.docs[id].modTime.Equal(info.ModTime)
		}
		ix.mu.RUnlock()
		if ok && !stale {
			return nil
		}
		content, err := fsys.ReadFile(p)
		if err != nil {
			return err
		}
		ix.AddWithTime(p, content, info.ModTime)
		if ok {
			updated++
		} else {
			added++
		}
		return nil
	})
	if err != nil {
		return added, updated, removed, err
	}
	removed = ix.removeVanished(root, seen)
	return added, updated, removed, nil
}
