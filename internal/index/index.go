// Package index implements the content-based access (CBA) engine HAC
// delegates searches to — the role Glimpse played in the paper. It is a
// segmented in-memory inverted index: documents are tokenized into
// terms and each term maps, per segment, to a bitmap of local document
// slots.
//
// The paper's data-consistency model (§2.4) shapes the API: documents
// can be added and updated incrementally, removals are tombstoned, and
// the paper's periodic "reindexing" is realized as an online merge of
// sealed segments (merge.go) that never invalidates document IDs.
// SyncTree walks a file system and performs the incremental reindex the
// paper describes ("re-index the file system periodically ... or on
// user request, for any part of the file system").
//
// Storage layout (DESIGN.md §10): writes land in a mutable active
// segment; once it reaches the seal threshold it becomes an immutable
// sealed segment and a fresh active segment takes over. Deletions only
// tombstone. A DocID is segmentID<<32 | localID, so merging sealed
// segments assigns new IDs internally but old IDs keep resolving
// through per-segment forward tables; epoch-pinned snapshots
// (snapshot.go) give queries a consistent segment set while a merge
// runs.
package index

import (
	"errors"
	gopath "path"
	"sync"
	"sync/atomic"
	"time"

	"hacfs/internal/bitset"
	"hacfs/internal/vfs"
)

// DocID identifies an indexed document: the segment ID in the high 32
// bits, the local slot within the segment in the low 32. IDs are stable
// for the life of the index — a merge retires segments but installs
// forward tables, so an old ID keeps resolving to the same document.
type DocID = uint64

// NoDoc is the resolution of a deleted document in a forward table.
const NoDoc DocID = ^DocID(0)

func makeID(seg, local uint32) DocID { return DocID(seg)<<32 | DocID(local) }

func splitID(id DocID) (seg, local uint32) { return uint32(id >> 32), uint32(id) }

// ErrNotEmpty is returned (wrapped in a *vfs.PathError) by SetTokenizer
// and RegisterTransducer once documents have been indexed: both change
// how content maps to terms, so calling them late would leave the
// already-indexed documents silently missing terms.
var ErrNotEmpty = errors.New("index: documents already indexed")

type docEntry struct {
	path    string
	modTime time.Time
	size    int
	alive   bool
}

// segment is one unit of index storage. The active segment is mutable;
// sealed segments never change their docs slice length or their
// postings — only the tombstone state (dead, deadCount) and the doc
// entries' path/modTime fields (renames) move under the index write
// lock. A segment produced by a merge additionally carries prev, the
// pre-merge DocID of each local slot, so snapshots pinned before the
// merge can map current IDs back into their own segment set.
type segment struct {
	id        uint32
	docs      []docEntry
	postings  map[string]*bitset.Bitmap    // term → local-slot bitmap
	dirs      map[string]*bitset.Container // ancestor dir → local slots beneath it (dirs.go)
	dead      *bitset.Bitmap               // tombstoned local slots
	deadCount int
	sealed    bool
	prev      []DocID  // merge provenance: local → pre-merge DocID (nil unless merged)
	dict      termDict // lazy sorted/length-bucketed vocabulary (dict.go); sealed only
}

func newSegment(id uint32) *segment {
	return &segment{
		id:       id,
		postings: make(map[string]*bitset.Bitmap),
		dirs:     make(map[string]*bitset.Container),
		dead:     bitset.NewBitmap(0),
	}
}

// aliveLocal returns the bitmap of live local slots. Caller holds ix.mu.
func (s *segment) aliveLocal() *bitset.Bitmap {
	bm := bitset.FullBitmap(len(s.docs))
	bm.AndNot(s.dead)
	return bm
}

// DefaultSealThreshold is the active-segment size at which it seals.
const DefaultSealThreshold = 4096

// Index is a segmented inverted index over documents named by path. It
// is safe for concurrent use.
type Index struct {
	mu      sync.RWMutex
	active  *segment
	sealed  []*segment // in creation order
	bySeg   map[uint32]*segment
	nextSeg uint32
	byPath  map[string]DocID

	// forward maps a merged-away segment to the new DocID of each of its
	// local slots (NoDoc for slots that were dead at merge time). Chains
	// are compressed at each merge commit, so resolution is O(1) hops in
	// the steady state.
	forward map[uint32][]DocID

	// epoch counts merge commits; snapshots record the epoch they
	// pinned, and Search-visible segment sets only change when it moves.
	epoch uint64

	// version counts every result-visible mutation (commit, tombstone,
	// rename, merge commit) — much finer-grained than epoch, which only
	// moves on merges. The query-result cache keys on it: a cached result
	// is valid exactly while the version it was computed at still stands.
	version atomic.Uint64

	liveDocs   int
	deadDocs   int
	totalSlots int // live + dead slots across resident segments

	sealThreshold int
	tok           Tokenizer
	// transducers, keyed by lowercase file extension ("" = all files),
	// add attribute terms alongside the tokenizer's words.
	transducers map[string][]Transducer
	met         ixMetrics

	// mergeMu serializes whole merge operations (plan → build → commit).
	// Lock order: mergeMu before mu; never acquire mergeMu under mu.
	mergeMu sync.Mutex
}

// Tokenizer splits document content into terms. The default is
// Tokenize.
type Tokenizer func(content []byte) []string

// New returns an empty index using the default tokenizer.
func New() *Index {
	ix := &Index{
		bySeg:         make(map[uint32]*segment),
		byPath:        make(map[string]DocID),
		forward:       make(map[uint32][]DocID),
		sealThreshold: DefaultSealThreshold,
		tok:           Tokenize,
	}
	ix.newActiveLocked()
	return ix
}

// newActiveLocked installs a fresh active segment. Caller holds ix.mu
// (or is the constructor).
func (ix *Index) newActiveLocked() {
	s := newSegment(ix.nextSeg)
	ix.nextSeg++
	ix.bySeg[s.id] = s
	ix.active = s
}

// sealActiveLocked freezes a non-empty active segment and starts a new
// one. Caller holds ix.mu.
func (ix *Index) sealActiveLocked() {
	if len(ix.active.docs) == 0 {
		return
	}
	ix.active.sealed = true
	ix.active.packDirs()
	ix.sealed = append(ix.sealed, ix.active)
	ix.newActiveLocked()
}

// eachSegmentLocked visits every resident segment (sealed in creation
// order, then the active one). Caller holds ix.mu.
func (ix *Index) eachSegmentLocked(fn func(*segment)) {
	for _, s := range ix.sealed {
		fn(s)
	}
	fn(ix.active)
}

// SetSealThreshold overrides the active-segment seal size, mainly so
// tests can force multi-segment layouts with small corpora. n <= 0
// restores the default.
func (ix *Index) SetSealThreshold(n int) {
	if n <= 0 {
		n = DefaultSealThreshold
	}
	ix.mu.Lock()
	ix.sealThreshold = n
	ix.mu.Unlock()
}

// SetTokenizer replaces the tokenizer. It must be called before any
// documents are added; once the store is non-empty it fails with a
// *vfs.PathError wrapping ErrNotEmpty, because documents indexed with
// the old tokenizer would silently keep its terms.
func (ix *Index) SetTokenizer(t Tokenizer) error {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if ix.totalSlots > 0 {
		return &vfs.PathError{Op: "settokenizer", Path: "index", Err: ErrNotEmpty}
	}
	ix.tok = t
	return nil
}

// Add indexes content under path, replacing any previous document at
// the same path, and returns the document's ID.
func (ix *Index) Add(path string, content []byte) DocID {
	return ix.AddWithTime(path, content, time.Time{})
}

// AddWithTime is Add recording the document's modification time, used
// by SyncTree to detect staleness.
func (ix *Index) AddWithTime(path string, content []byte, modTime time.Time) DocID {
	return ix.commitDoc(ix.prepareDoc(path, content, modTime))
}

// preparedDoc is a tokenized document awaiting its merge into the
// index. Preparation (the expensive part: tokenization plus
// transducers) runs without the index write lock, so many documents can
// be prepared concurrently and committed by one writer.
type preparedDoc struct {
	path    string
	modTime time.Time
	size    int
	terms   map[string]struct{}
}

// prepareDoc tokenizes content and runs the transducers. It does not
// take the write lock and is safe to call from many goroutines.
func (ix *Index) prepareDoc(path string, content []byte, modTime time.Time) preparedDoc {
	terms := ix.termSet(content)
	for _, t := range ix.applyTransducers(path, content) {
		terms[t] = struct{}{}
	}
	return preparedDoc{path: path, modTime: modTime, size: len(content), terms: terms}
}

// commitDoc merges one prepared document under the write lock. Commit
// order determines document IDs, so a deterministic caller must commit
// in a deterministic order.
func (ix *Index) commitDoc(d preparedDoc) DocID {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	return ix.commitDocLocked(d)
}

func (ix *Index) commitDocLocked(d preparedDoc) DocID {
	if old, ok := ix.byPath[d.path]; ok {
		ix.tombstoneLocked(old)
	}
	s := ix.active
	local := uint32(len(s.docs))
	s.docs = append(s.docs, docEntry{path: d.path, modTime: d.modTime, size: d.size, alive: true})
	s.dirsAdd(d.path, local)
	id := makeID(s.id, local)
	ix.byPath[d.path] = id
	for term := range d.terms {
		bm, ok := s.postings[term]
		if !ok {
			bm = bitset.NewBitmap(0)
			s.postings[term] = bm
		}
		bm.Add(local)
	}
	ix.liveDocs++
	ix.totalSlots++
	ix.version.Add(1)
	ix.met.docsIndexed.Add(1)
	if len(s.docs) >= ix.sealThreshold {
		ix.sealActiveLocked()
	}
	return id
}

// termSet tokenizes content into a set of unique terms.
func (ix *Index) termSet(content []byte) map[string]struct{} {
	terms := ix.tok(content)
	set := make(map[string]struct{}, len(terms))
	for _, t := range terms {
		set[t] = struct{}{}
	}
	return set
}

// resolveLocked follows forward tables from id to its resident segment
// and local slot. Caller holds ix.mu.
func (ix *Index) resolveLocked(id DocID) (*segment, uint32, bool) {
	for hops := 0; hops < 64; hops++ {
		seg, local := splitID(id)
		if s, ok := ix.bySeg[seg]; ok {
			if int(local) < len(s.docs) {
				return s, local, true
			}
			return nil, 0, false
		}
		tbl, ok := ix.forward[seg]
		if !ok || int(local) >= len(tbl) {
			return nil, 0, false
		}
		id = tbl[local]
		if id == NoDoc {
			return nil, 0, false
		}
	}
	return nil, 0, false
}

// tombstoneLocked marks id dead. Caller holds ix.mu.
func (ix *Index) tombstoneLocked(id DocID) {
	s, local, ok := ix.resolveLocked(id)
	if !ok || !s.docs[local].alive {
		return
	}
	s.docs[local].alive = false
	s.dead.Add(local)
	s.deadCount++
	ix.liveDocs--
	ix.deadDocs++
	ix.version.Add(1)
	delete(ix.byPath, s.docs[local].path)
	ix.met.docsRemoved.Add(1)
}

// Remove deletes the document at path from the index. It reports
// whether a document was present.
func (ix *Index) Remove(path string) bool {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	id, ok := ix.byPath[path]
	if !ok {
		return false
	}
	ix.tombstoneLocked(id)
	return true
}

// RenamePath records that a document moved without content change.
func (ix *Index) RenamePath(oldPath, newPath string) bool {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	id, ok := ix.byPath[oldPath]
	if !ok {
		return false
	}
	s, local, ok := ix.resolveLocked(id)
	if !ok {
		return false
	}
	delete(ix.byPath, oldPath)
	s.dirsRename(s.docs[local].path, newPath, local)
	s.docs[local].path = newPath
	ix.byPath[newPath] = id
	ix.version.Add(1)
	return true
}

// RenamePrefix records that the directory at oldRoot moved to newRoot,
// rewriting the paths of every indexed document beneath it. It returns
// the number of documents updated.
func (ix *Index) RenamePrefix(oldRoot, newRoot string) int {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	type move struct {
		old string
		id  DocID
	}
	var moves []move
	for p, id := range ix.byPath {
		if vfs.HasPrefix(p, oldRoot) {
			moves = append(moves, move{p, id})
		}
	}
	for _, m := range moves {
		s, local, ok := ix.resolveLocked(m.id)
		if !ok {
			continue
		}
		np := newRoot + m.old[len(oldRoot):]
		delete(ix.byPath, m.old)
		s.dirsRename(s.docs[local].path, np, local)
		s.docs[local].path = np
		ix.byPath[np] = m.id
	}
	if len(moves) > 0 {
		ix.version.Add(1)
	}
	return len(moves)
}

// Lookup returns the set of live documents containing term. The result
// is owned by the caller.
func (ix *Index) Lookup(term string) *bitset.Segmented {
	term = normalizeTerm(term)
	out := bitset.NewSegmented()
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	ix.eachSegmentLocked(func(s *segment) {
		if bm, ok := s.postings[term]; ok {
			live := bm.Clone()
			live.AndNot(s.dead)
			out.PutSeg(s.id, live)
		}
	})
	return out
}

// LookupPrefix returns the set of live documents containing any term
// with the given prefix (the query language's "foo*").
func (ix *Index) LookupPrefix(prefix string) *bitset.Segmented {
	prefix = normalizeTerm(prefix)
	out := bitset.NewSegmented()
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	ix.eachSegmentLocked(func(s *segment) {
		var acc *bitset.Bitmap
		for term, bm := range s.postings {
			if len(term) >= len(prefix) && term[:len(prefix)] == prefix {
				if acc == nil {
					acc = bm.Clone()
				} else {
					acc.Or(bm)
				}
			}
		}
		if acc != nil {
			acc.AndNot(s.dead)
			out.PutSeg(s.id, acc)
		}
	})
	return out
}

// AllDocs returns the set of all live document IDs.
func (ix *Index) AllDocs() *bitset.Segmented {
	out := bitset.NewSegmented()
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	ix.eachSegmentLocked(func(s *segment) {
		out.PutSeg(s.id, s.aliveLocal())
	})
	return out
}

// PathOf resolves a document ID to its path. IDs issued before a merge
// keep resolving through the merge's forward tables.
func (ix *Index) PathOf(id DocID) (string, bool) {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	s, local, ok := ix.resolveLocked(id)
	if !ok || !s.docs[local].alive {
		return "", false
	}
	return s.docs[local].path, true
}

// IDOf resolves a path to its live document ID. The byPath entry may
// briefly lag a merge commit (the repoint runs in batches after the
// swap), so the raw value is canonicalized through the forward tables
// before it escapes.
func (ix *Index) IDOf(path string) (DocID, bool) {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	id, ok := ix.byPath[path]
	if !ok {
		return 0, false
	}
	if s, local, ok := ix.resolveLocked(id); ok {
		return makeID(s.id, local), true
	}
	return 0, false
}

// Paths maps a result set to its sorted document paths. IDs that no
// longer resolve are skipped.
func (ix *Index) Paths(res *bitset.Segmented) []string {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	out := make([]string, 0, res.Len())
	res.Range(func(id uint64) bool {
		if s, local, ok := ix.resolveLocked(id); ok && s.docs[local].alive {
			out = append(out, s.docs[local].path)
		}
		return true
	})
	// docs land in segment order, not path order; sort for stable output.
	sortStrings(out)
	return out
}

// IDsOf maps paths to the set of their live document IDs. Unindexed
// paths are skipped.
func (ix *Index) IDsOf(paths []string) *bitset.Segmented {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	out := bitset.NewSegmented()
	for _, p := range paths {
		if id, ok := ix.byPath[p]; ok {
			if s, local, ok := ix.resolveLocked(id); ok {
				out.Add(makeID(s.id, local))
			}
		}
	}
	return out
}

// DocsUnder returns the set of live documents whose path lies in the
// subtree rooted at root. This is how a syntactic directory "provides a
// scope" to the semantic directories beneath it.
func (ix *Index) DocsUnder(root string) *bitset.Segmented {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.docsUnderLocked(root)
}

func (ix *Index) docsUnderLocked(root string) *bitset.Segmented {
	root = gopath.Clean(root)
	out := bitset.NewSegmented()
	ix.eachSegmentLocked(func(s *segment) {
		if root == "/" {
			out.PutSeg(s.id, s.aliveLocal())
			return
		}
		if c := ix.underLocked(s, root); c != nil {
			live := c.Clone()
			if s.deadCount > 0 {
				live.AndNotBitmap(s.dead)
			}
			out.PutSegContainer(s.id, live)
		}
	})
	return out
}

// Version returns the mutation counter: it moves on every
// result-visible change, so equal versions imply equal query results.
func (ix *Index) Version() uint64 { return ix.version.Load() }

// NumDocs returns the number of live documents.
func (ix *Index) NumDocs() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.liveDocs
}

// Universe returns the size of the current ID space (live + dead slots
// across resident segments), the N in the paper's "N/8 bytes per
// semantic directory".
func (ix *Index) Universe() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.totalSlots
}

// Epoch returns the merge epoch: it advances exactly when a merge
// commit changes the resident segment set.
func (ix *Index) Epoch() uint64 {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.epoch
}

// Stats describes the index footprint, for the Table 3 experiment.
type Stats struct {
	Docs         int   // live documents
	DeadDocs     int   // tombstoned documents awaiting a merge
	Segments     int   // resident segments (sealed + active)
	Terms        int   // distinct terms
	IndexBytes   int   // approximate index payload size
	ContentBytes int64 // total size of live indexed content
}

// Stats returns a snapshot of the index footprint.
func (ix *Index) Stats() Stats {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	s := Stats{
		Docs:     ix.liveDocs,
		DeadDocs: ix.deadDocs,
		Segments: len(ix.sealed) + 1,
	}
	terms := make(map[string]struct{})
	ix.eachSegmentLocked(func(seg *segment) {
		for term, bm := range seg.postings {
			terms[term] = struct{}{}
			s.IndexBytes += len(term) + bm.SizeBytes()
		}
		for _, d := range seg.docs {
			s.IndexBytes += len(d.path) + 32
			if d.alive {
				s.ContentBytes += int64(d.size)
			}
		}
	})
	s.Terms = len(terms)
	return s
}

// SyncTreeParallel is SyncTree with file reads and tokenization fanned
// out over a pool of workers goroutines. Each bounded chunk of the work
// list is assembled into a whole segment off-lock and committed sealed
// in one step — the write lock is taken once per chunk, not once per
// document. Chunks are cut from the walk (sorted-path) order, so link
// materialization and Search results downstream are identical to a
// serial SyncTree over the same tree; only the segment layout differs.
// workers <= 1 falls back to the serial path.
func (ix *Index) SyncTreeParallel(fsys vfs.FileSystem, root string, workers int) (added, updated, removed int, err error) {
	if workers <= 1 {
		return ix.SyncTree(fsys, root)
	}

	// Phase 1: one cheap serial walk decides what needs (re)indexing.
	type job struct {
		path    string
		modTime time.Time
		existed bool
	}
	var jobs []job
	seen := make(map[string]bool)
	err = vfs.Walk(fsys, root, func(p string, info vfs.Info) error {
		if info.Type != vfs.TypeFile {
			return nil
		}
		seen[p] = true
		ix.mu.RLock()
		id, ok := ix.byPath[p]
		stale := false
		if ok {
			if s, local, rok := ix.resolveLocked(id); rok {
				stale = !s.docs[local].modTime.Equal(info.ModTime)
			}
		}
		ix.mu.RUnlock()
		if ok && !stale {
			return nil
		}
		jobs = append(jobs, job{path: p, modTime: info.ModTime, existed: ok})
		return nil
	})
	if err != nil {
		return 0, 0, 0, err
	}

	// Phase 2+3: workers read and tokenize one bounded chunk at a time;
	// the chunk then becomes one sealed segment, built in walk order.
	// Chunking bounds how many prepared term sets are alive at once —
	// preparing the whole tree before committing any of it made the heap
	// (and GC time) grow with the corpus, erasing the tokenization
	// speedup.
	type prep struct {
		doc preparedDoc
		err error
	}
	chunk := 32 * workers
	preps := make([]prep, chunk)
	for lo := 0; lo < len(jobs); lo += chunk {
		hi := lo + chunk
		if hi > len(jobs) {
			hi = len(jobs)
		}
		var next atomic.Int64
		next.Store(int64(lo))
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= hi {
						return
					}
					content, err := fsys.ReadFile(jobs[i].path)
					if err != nil {
						preps[i-lo] = prep{err: err}
						continue
					}
					preps[i-lo] = prep{doc: ix.prepareDoc(jobs[i].path, content, jobs[i].modTime)}
				}
			}()
		}
		wg.Wait()
		docs := make([]preparedDoc, 0, hi-lo)
		for i := lo; i < hi; i++ {
			p := &preps[i-lo]
			if p.err != nil {
				return added, updated, removed, p.err
			}
			docs = append(docs, p.doc)
			*p = prep{}
			if jobs[i].existed {
				updated++
			} else {
				added++
			}
		}
		ix.commitChunk(docs)
	}

	removed = ix.removeVanished(root, seen)
	ix.MaybeMerge()
	return added, updated, removed, nil
}

// commitChunk builds one sealed segment from prepared documents (in
// slice order) off-lock, then installs it under a single write-lock
// acquisition — the parallel path's seal-on-merge commit.
func (ix *Index) commitChunk(docs []preparedDoc) {
	if len(docs) == 0 {
		return
	}
	seg := newSegment(0) // id assigned at install time
	seg.sealed = true
	for i, d := range docs {
		seg.docs = append(seg.docs, docEntry{path: d.path, modTime: d.modTime, size: d.size, alive: true})
		seg.dirsAdd(d.path, uint32(i))
		for term := range d.terms {
			bm, ok := seg.postings[term]
			if !ok {
				bm = bitset.NewBitmap(len(docs))
				seg.postings[term] = bm
			}
			bm.Add(uint32(i))
		}
	}
	seg.packDirs()

	ix.mu.Lock()
	defer ix.mu.Unlock()
	seg.id = ix.nextSeg
	ix.nextSeg++
	for i := range seg.docs {
		p := seg.docs[i].path
		if old, ok := ix.byPath[p]; ok {
			ix.tombstoneLocked(old)
		}
		ix.byPath[p] = makeID(seg.id, uint32(i))
	}
	ix.bySeg[seg.id] = seg
	ix.sealed = append(ix.sealed, seg)
	ix.liveDocs += len(seg.docs)
	ix.totalSlots += len(seg.docs)
	ix.version.Add(1)
	ix.met.docsIndexed.Add(int64(len(seg.docs)))
}

// removeVanished drops indexed documents under root that are absent
// from seen, returning how many were removed.
func (ix *Index) removeVanished(root string, seen map[string]bool) int {
	ix.mu.RLock()
	var gone []string
	for p := range ix.byPath {
		if vfs.HasPrefix(p, root) && !seen[p] {
			gone = append(gone, p)
		}
	}
	ix.mu.RUnlock()
	removed := 0
	for _, p := range gone {
		if ix.Remove(p) {
			removed++
		}
	}
	return removed
}

// SyncTree incrementally reindexes all regular files under root in
// fsys: new files are added, files whose modification time changed are
// re-indexed, and indexed files that no longer exist under root are
// removed. It returns the number of added, updated and removed
// documents.
func (ix *Index) SyncTree(fsys vfs.FileSystem, root string) (added, updated, removed int, err error) {
	seen := make(map[string]bool)
	err = vfs.Walk(fsys, root, func(p string, info vfs.Info) error {
		if info.Type != vfs.TypeFile {
			return nil
		}
		seen[p] = true
		ix.mu.RLock()
		id, ok := ix.byPath[p]
		var stale bool
		if ok {
			if s, local, rok := ix.resolveLocked(id); rok {
				stale = !s.docs[local].modTime.Equal(info.ModTime)
			}
		}
		ix.mu.RUnlock()
		if ok && !stale {
			return nil
		}
		content, err := fsys.ReadFile(p)
		if err != nil {
			return err
		}
		ix.AddWithTime(p, content, info.ModTime)
		if ok {
			updated++
		} else {
			added++
		}
		return nil
	})
	if err != nil {
		return added, updated, removed, err
	}
	removed = ix.removeVanished(root, seen)
	ix.MaybeMerge()
	return added, updated, removed, nil
}
