package index

import (
	"runtime"
	"time"

	"hacfs/internal/bitset"
)

// Online compaction. A merge folds a set of sealed segments into one
// fresh segment, dropping tombstoned slots, and retires the victims —
// the paper's §2.4 "reindexing" made incremental and concurrent.
//
// The heavy work happens off-lock: sealed postings are immutable, and
// the plan phase copies the per-victim doc entries and tombstone
// bitmaps under the read lock, so Search and Sync proceed while the
// merged segment is assembled. The commit phase then takes the write
// lock briefly to reconcile anything that moved during the build
// (documents tombstoned or renamed after the plan was taken), install
// the forward tables that keep pre-merge DocIDs resolving, rewrite
// byPath for the moved documents, and bump the epoch.
//
// Merge policy: MaybeMerge fires when the sealed-segment count exceeds
// mergeMaxSealed or when dead slots exceed mergeDeadNum/mergeDeadDen of
// the ID space. ForceMerge always folds everything, sealing the active
// segment first.

const (
	// mergeMaxSealed is the sealed-segment count that triggers a merge.
	mergeMaxSealed = 8
	// mergeDeadNum/mergeDeadDen: merge when dead/total > 3/10.
	mergeDeadNum = 3
	mergeDeadDen = 10
	// mergeYieldEvery paces the off-lock build phase: after this many
	// units of work the builder yields the processor. On GOMAXPROCS=1
	// the build is otherwise one long CPU burst and concurrent Search
	// calls wait out the scheduler's ~10ms preemption quantum; yielding
	// keeps reader latency bounded by a slice, not the whole merge.
	mergeYieldEvery = 512
)

// victimSnap is one victim's state captured at plan time. Doc entries
// are copied (paths move under renames) and the tombstone bitmap is
// cloned; postings are shared because sealed postings never change.
type victimSnap struct {
	s    *segment
	docs []docEntry
	dead *bitset.Bitmap
}

const noLocal = ^uint32(0)

// MaybeMerge runs one merge pass if the policy calls for it, returning
// whether a merge happened. It never seals the active segment.
func (ix *Index) MaybeMerge() bool {
	ix.mergeMu.Lock()
	defer ix.mergeMu.Unlock()
	ix.mu.RLock()
	trigger := len(ix.sealed) > mergeMaxSealed ||
		(ix.totalSlots > 0 && ix.deadDocs*mergeDeadDen > ix.totalSlots*mergeDeadNum && len(ix.sealed) > 0)
	worthIt := len(ix.sealed) >= 2 || (len(ix.sealed) == 1 && ix.sealed[0].deadCount > 0)
	ix.mu.RUnlock()
	if !trigger || !worthIt {
		return false
	}
	ix.mergeSealedLocked()
	return true
}

// ForceMerge seals the active segment and folds every sealed segment
// into one, unconditionally. DocIDs issued before the call remain
// valid. It replaces the old stop-the-world Compact: callers that want
// "settle everything now" semantics call this, and nothing else needs
// the remap it used to return.
func (ix *Index) ForceMerge() {
	ix.mergeMu.Lock()
	defer ix.mergeMu.Unlock()
	ix.mu.Lock()
	ix.sealActiveLocked()
	skip := len(ix.sealed) == 0 || (len(ix.sealed) == 1 && ix.sealed[0].deadCount == 0)
	ix.mu.Unlock()
	if skip {
		return
	}
	ix.mergeSealedLocked()
}

// StartMerger runs MaybeMerge every interval on a background goroutine
// until the returned stop function is called. Stop blocks until any
// in-flight pass finishes.
func (ix *Index) StartMerger(interval time.Duration) (stop func()) {
	if interval <= 0 {
		interval = time.Second
	}
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				ix.MaybeMerge()
			}
		}
	}()
	return func() {
		close(done)
		<-finished
	}
}

// mergeSealedLocked merges all currently-sealed segments. Caller holds
// mergeMu (so there is exactly one merge in flight) but NOT ix.mu.
func (ix *Index) mergeSealedLocked() {
	start := time.Now()

	// Plan: capture the victims under the read lock. Doc entries are
	// copied because renames rewrite paths in place; tombstone bitmaps
	// are cloned because deletes keep landing while we build.
	ix.mu.RLock()
	victims := make([]victimSnap, 0, len(ix.sealed))
	inputSlots := 0
	for _, s := range ix.sealed {
		victims = append(victims, victimSnap{
			s:    s,
			docs: append([]docEntry(nil), s.docs...),
			dead: s.dead.Clone(),
		})
		inputSlots += len(s.docs)
	}
	ix.mu.RUnlock()
	if len(victims) == 0 {
		return
	}

	// Reserve the merged segment's identity now, so the forward tables
	// can be assembled off-lock too. IDs stay unique even if a chunk
	// commit seals a new active segment while the build runs.
	ix.mu.Lock()
	mergedID := ix.nextSeg
	ix.nextSeg++
	ix.mu.Unlock()

	// Build: assemble the merged segment from the immutable postings and
	// the planned copies, entirely off-lock. remap[i][local] is the
	// merged local slot of victim i's local, or noLocal if it was dead
	// at plan time.
	merged := newSegment(mergedID)
	merged.sealed = true
	work := 0
	pace := func(units int) {
		if work += units; work >= mergeYieldEvery {
			work = 0
			runtime.Gosched()
		}
	}
	remap := make([][]uint32, len(victims))
	var prev []DocID
	for i, v := range victims {
		remap[i] = make([]uint32, len(v.docs))
		for l, d := range v.docs {
			pace(1)
			if !d.alive || v.dead.Contains(uint32(l)) {
				remap[i][l] = noLocal
				continue
			}
			nl := uint32(len(merged.docs))
			merged.docs = append(merged.docs, d)
			merged.dirsAdd(d.path, nl)
			prev = append(prev, makeID(v.s.id, uint32(l)))
			remap[i][l] = nl
		}
	}
	merged.packDirs()
	merged.prev = prev
	for i, v := range victims {
		for term, bm := range v.s.postings {
			var acc *bitset.Bitmap
			bm.Range(func(l uint32) bool {
				if nl := remap[i][l]; nl != noLocal {
					if acc == nil {
						acc = bitset.NewBitmap(len(merged.docs))
					}
					acc.Add(nl)
				}
				return true
			})
			pace(1 + bm.Len()/8)
			if acc == nil {
				continue
			}
			if cur, ok := merged.postings[term]; ok {
				cur.Or(acc)
			} else {
				merged.postings[term] = acc
			}
		}
	}

	// Pre-assemble the victims' forward tables off-lock; the commit
	// phase only patches the slots that changed since the plan.
	victimSet := make(map[uint32]bool, len(victims))
	fwds := make([][]DocID, len(victims))
	for i, v := range victims {
		victimSet[v.s.id] = true
		fwd := make([]DocID, len(v.s.docs))
		for l := range v.s.docs {
			pace(1)
			if nl := remap[i][l]; nl != noLocal {
				fwd[l] = makeID(mergedID, nl)
			} else {
				fwd[l] = NoDoc
			}
		}
		fwds[i] = fwd
	}

	// Commit: reconcile the delta since the plan, then swap the segment
	// set atomically under the write lock. Chain compression runs after
	// the swap in short per-table holds — its cost grows with merge
	// history, and a reader arriving mid-sweep must not wait for all of
	// it.
	ix.mu.Lock()

	for i, v := range victims {
		for l := range v.s.docs {
			nl := remap[i][l]
			if nl == noLocal {
				continue
			}
			cur := &v.s.docs[l]
			if !cur.alive {
				// Tombstoned after the plan: the delete wins.
				merged.docs[nl].alive = false
				merged.dead.Add(nl)
				merged.deadCount++
				fwds[i][l] = NoDoc
			} else {
				// Renames after the plan rewrote path/modTime in place;
				// refresh so the merged entry is current.
				merged.dirsRename(merged.docs[nl].path, cur.path, nl)
				merged.docs[nl] = *cur
			}
		}
	}

	// Install forward tables for the victims.
	for i, v := range victims {
		ix.forward[v.s.id] = fwds[i]
		delete(ix.bySeg, v.s.id)
	}
	stale := make([]uint32, 0, len(ix.forward))
	for segID := range ix.forward {
		if !victimSet[segID] {
			stale = append(stale, segID)
		}
	}

	// Swap the resident set. Segments sealed after the plan was taken
	// (a concurrent chunk commit, or the active segment filling up) are
	// not victims and must survive the swap.
	remaining := ix.sealed[:0]
	for _, s := range ix.sealed {
		if !victimSet[s.id] {
			remaining = append(remaining, s)
		}
	}
	ix.sealed = remaining
	if len(merged.docs) > 0 {
		ix.bySeg[merged.id] = merged
		ix.sealed = append(ix.sealed, merged)
	}
	deadBefore := 0
	for _, v := range victims {
		deadBefore += v.s.deadCount
	}
	ix.totalSlots += len(merged.docs) - inputSlots
	ix.deadDocs += merged.deadCount - deadBefore
	ix.epoch++
	ix.version.Add(1)
	ix.mu.Unlock()

	// Repoint byPath at the moved documents in batches, each under its
	// own brief write hold. Between batches a stale byPath entry still
	// resolves correctly — it names a victim slot whose forward table
	// was installed with the swap — so this is pure housekeeping kept
	// off the readers' critical path. A slot whose entry no longer leads
	// here lost a race to a concurrent re-add, delete, or rename; the
	// competing writer's value wins.
	if len(merged.docs) > 0 {
		for lo := 0; lo < len(merged.docs); lo += mergeYieldEvery {
			hi := min(lo+mergeYieldEvery, len(merged.docs))
			ix.mu.Lock()
			for nl := lo; nl < hi; nl++ {
				if !merged.docs[nl].alive {
					continue
				}
				path := merged.docs[nl].path
				cur, ok := ix.byPath[path]
				if !ok {
					continue
				}
				if s, l, ok := ix.resolveLocked(cur); ok && s == merged && l == uint32(nl) {
					ix.byPath[path] = makeID(merged.id, uint32(nl))
				}
			}
			ix.mu.Unlock()
		}
	}

	// Compress provenance chains so older retired segments point
	// directly at resident slots. The sweep's cost grows with merge
	// history, so it runs in bounded batches, each under its own brief
	// write hold: only mergeMu-holders touch ix.forward, so dropping
	// ix.mu between batches is safe, and resolution stays correct on
	// uncompressed chains via the hop walk — this is purely keeping
	// lookups O(1), off the readers' critical path. Tables with no
	// surviving targets are dropped; resolution treats a missing table
	// and an all-NoDoc table identically.
	for _, segID := range stale {
		live, length := 0, 0
		for lo := 0; ; lo += mergeYieldEvery {
			ix.mu.Lock()
			tbl := ix.forward[segID]
			length = len(tbl)
			hi := min(lo+mergeYieldEvery, length)
			for j := lo; j < hi; j++ {
				id := tbl[j]
				for hops := 0; id != NoDoc && hops < 64; hops++ {
					seg, local := splitID(id)
					next, ok := ix.forward[seg]
					if !ok {
						if _, resident := ix.bySeg[seg]; !resident {
							id = NoDoc // target segment gone entirely
						}
						break
					}
					if int(local) >= len(next) {
						id = NoDoc
						break
					}
					id = next[local]
				}
				tbl[j] = id
				if id != NoDoc {
					live++
				}
			}
			if hi == length && live == 0 {
				delete(ix.forward, segID)
			}
			ix.mu.Unlock()
			if hi == length {
				break
			}
		}
	}

	ix.met.merges.Add(1)
	ix.met.mergeSeconds.ObserveSince(start)
	if out := len(merged.docs) - merged.deadCount; out > 0 {
		ix.met.mergeAmp.Observe(float64(inputSlots) / float64(out))
	}
}
