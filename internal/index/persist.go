package index

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"time"

	"hacfs/internal/bitset"
)

// Index persistence. Glimpse keeps its index on disk and loads it at
// startup; Save/Load give this index the same property, so a server
// (cmd/hacindexd) can restart without re-reading its document tree.
// Tombstoned documents are compacted away in the image.
//
// Like volume images (see internal/hac/persist.go and DESIGN.md §8),
// index images are length-framed and carry a CRC-32C trailer, so a
// torn or bit-flipped image is rejected up front instead of being fed
// to gob.

const indexVersion = 2

var indexMagic = [4]byte{'H', 'A', 'C', 'X'}

// maxIndexPayload bounds the claimed payload length of an image.
const maxIndexPayload = 1 << 30

var indexCRC = crc32.MakeTable(crc32.Castagnoli)

// ErrCorruptIndex marks an index image that is truncated, bit-flipped,
// version-skewed or otherwise undecodable.
var ErrCorruptIndex = errors.New("index: corrupt index image")

type indexHeader struct {
	Version int
	Docs    int
	Terms   int
}

type docImage struct {
	Path    string
	ModTime time.Time
	Size    int
}

type postingImage struct {
	Term string
	IDs  []uint32
}

// Save writes a compacted, checksummed image of the index to w. The
// in-memory index is not modified (a compacted copy of the ID space is
// written, so Load yields dense IDs regardless of tombstones).
func (ix *Index) Save(w io.Writer) error {
	var payload bytes.Buffer
	if err := ix.encodePayload(&payload); err != nil {
		return err
	}
	var hdr [14]byte
	copy(hdr[:4], indexMagic[:])
	binary.BigEndian.PutUint16(hdr[4:6], indexVersion)
	binary.BigEndian.PutUint64(hdr[6:14], uint64(payload.Len()))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("index: writing header: %w", err)
	}
	if _, err := w.Write(payload.Bytes()); err != nil {
		return fmt.Errorf("index: writing payload: %w", err)
	}
	var trailer [4]byte
	binary.BigEndian.PutUint32(trailer[:], crc32.Checksum(payload.Bytes(), indexCRC))
	if _, err := w.Write(trailer[:]); err != nil {
		return fmt.Errorf("index: writing checksum: %w", err)
	}
	return nil
}

func (ix *Index) encodePayload(w io.Writer) error {
	ix.mu.RLock()
	defer ix.mu.RUnlock()

	// Dense remap of live documents.
	remap := make(map[DocID]uint32, len(ix.docs))
	var docs []docImage
	for id, d := range ix.docs {
		if !d.alive {
			continue
		}
		remap[DocID(id)] = uint32(len(docs))
		docs = append(docs, docImage{Path: d.path, ModTime: d.modTime, Size: d.size})
	}

	enc := gob.NewEncoder(w)
	if err := enc.Encode(indexHeader{Version: indexVersion, Docs: len(docs), Terms: len(ix.postings)}); err != nil {
		return fmt.Errorf("index: encoding header: %w", err)
	}
	for i := range docs {
		if err := enc.Encode(&docs[i]); err != nil {
			return fmt.Errorf("index: encoding document %q: %w", docs[i].Path, err)
		}
	}
	for term, bm := range ix.postings {
		pi := postingImage{Term: term}
		bm.Range(func(id uint32) bool {
			if nid, ok := remap[id]; ok {
				pi.IDs = append(pi.IDs, nid)
			}
			return true
		})
		if len(pi.IDs) == 0 {
			pi.IDs = nil
		}
		if err := enc.Encode(&pi); err != nil {
			return fmt.Errorf("index: encoding term %q: %w", term, err)
		}
	}
	return nil
}

// LoadIndex reads an image written by Save, verifying the frame length
// and checksum first; corrupt images fail with an error wrapping
// ErrCorruptIndex, never a panic. Tokenizers and transducers are code,
// not data: register them on the returned index before adding new
// documents.
func LoadIndex(r io.Reader) (ix *Index, err error) {
	defer func() {
		if p := recover(); p != nil {
			ix, err = nil, fmt.Errorf("%w: decode panic: %v", ErrCorruptIndex, p)
		}
	}()
	var hdr [14]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: short header: %v", ErrCorruptIndex, err)
	}
	if !bytes.Equal(hdr[:4], indexMagic[:]) {
		return nil, fmt.Errorf("%w: bad magic %q", ErrCorruptIndex, hdr[:4])
	}
	if v := binary.BigEndian.Uint16(hdr[4:6]); v != indexVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrCorruptIndex, v)
	}
	length := binary.BigEndian.Uint64(hdr[6:14])
	if length > maxIndexPayload {
		return nil, fmt.Errorf("%w: implausible payload length %d", ErrCorruptIndex, length)
	}
	payload := make([]byte, int(length))
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("%w: truncated payload: %v", ErrCorruptIndex, err)
	}
	var trailer [4]byte
	if _, err := io.ReadFull(r, trailer[:]); err != nil {
		return nil, fmt.Errorf("%w: missing checksum trailer: %v", ErrCorruptIndex, err)
	}
	if got, want := crc32.Checksum(payload, indexCRC), binary.BigEndian.Uint32(trailer[:]); got != want {
		return nil, fmt.Errorf("%w: checksum mismatch (%08x != %08x)", ErrCorruptIndex, got, want)
	}
	dec := gob.NewDecoder(bytes.NewReader(payload))
	var ih indexHeader
	if err := dec.Decode(&ih); err != nil {
		return nil, fmt.Errorf("%w: decoding header: %v", ErrCorruptIndex, err)
	}
	if ih.Version != indexVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrCorruptIndex, ih.Version)
	}
	if ih.Docs < 0 || ih.Terms < 0 {
		return nil, fmt.Errorf("%w: negative counts in header", ErrCorruptIndex)
	}
	ix = New()
	for i := 0; i < ih.Docs; i++ {
		var di docImage
		if err := dec.Decode(&di); err != nil {
			return nil, fmt.Errorf("%w: decoding document %d: %v", ErrCorruptIndex, i, err)
		}
		id := DocID(len(ix.docs))
		ix.docs = append(ix.docs, docEntry{path: di.Path, modTime: di.ModTime, size: di.Size, alive: true})
		ix.byPath[di.Path] = id
		ix.alive.Add(id)
	}
	for i := 0; i < ih.Terms; i++ {
		var pi postingImage
		if err := dec.Decode(&pi); err != nil {
			return nil, fmt.Errorf("%w: decoding posting %d: %v", ErrCorruptIndex, i, err)
		}
		if len(pi.IDs) == 0 {
			continue
		}
		bm := ix.postings[pi.Term]
		if bm == nil {
			bm = bitset.NewBitmap(ih.Docs)
			ix.postings[pi.Term] = bm
		}
		for _, id := range pi.IDs {
			if int(id) >= ih.Docs {
				return nil, fmt.Errorf("%w: posting for %q references document %d of %d", ErrCorruptIndex, pi.Term, id, ih.Docs)
			}
			bm.Add(id)
		}
	}
	return ix, nil
}
