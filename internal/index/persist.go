package index

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"time"

	"hacfs/internal/bitset"
	"hacfs/internal/vfs"
)

// Index persistence. Glimpse keeps its index on disk and loads it at
// startup; Save/Load give this index the same property, so a server
// (cmd/hacindexd) can restart without re-reading its document tree.
//
// A version-3 image is a container header followed by one framed block
// per resident segment:
//
//	"HACX" | u16 3 | u64 len | gob(containerHeader) | u32 CRC-32C
//	"HACS" | u16 3 | u64 len | gob(segmentImage)    | u32 CRC-32C   (× Segments)
//
// Every block carries its own length frame and CRC-32C trailer (the
// same shape as volume images, DESIGN.md §8), so corruption is
// contained: a bit-flipped segment block fails its own checksum and is
// skipped, the remaining blocks still load, and LoadIndex returns the
// partial index together with a *vfs.PathError wrapping
// vfs.ErrCorruptVolume. Only damage that loses the stream position — a
// corrupt container header, or a torn block frame — ends the load.
//
// Segments are compacted as they are written (tombstoned slots dropped,
// local IDs renumbered), so document IDs are NOT stable across
// save/load; they never were in version 2 either. Version-2 monolithic
// images are still accepted and migrate into a single sealed segment.

const (
	indexVersion       = 3
	legacyIndexVersion = 2
)

var (
	indexMagic   = [4]byte{'H', 'A', 'C', 'X'}
	segmentMagic = [4]byte{'H', 'A', 'C', 'S'}
)

// maxIndexPayload bounds the claimed payload length of any one block.
const maxIndexPayload = 1 << 30

var indexCRC = crc32.MakeTable(crc32.Castagnoli)

// ErrCorruptIndex marks an index image that is truncated, bit-flipped,
// version-skewed or otherwise undecodable. It is the same sentinel as
// vfs.ErrCorruptVolume, so one errors.Is test covers both layers.
var ErrCorruptIndex = vfs.ErrCorruptVolume

// ErrBlockFraming marks damage that loses the stream position (bad
// magic, torn frame): loading cannot continue past it. Callers that
// embed an index image in a larger stream (hac.SaveVolume) test for it
// with errors.Is to distinguish a torn save — which invalidates
// everything that follows — from contained damage that costs only the
// blocks it touched.
var ErrBlockFraming = errors.New("index: block framing damaged")

type containerHeader struct {
	Version  int
	Segments int    // segment blocks that follow
	NextSeg  uint32 // next segment ID to allocate after load
}

// legacyHeader is the version-2 monolithic gob stream header.
type legacyHeader struct {
	Version int
	Docs    int
	Terms   int
}

type docImage struct {
	Path    string
	ModTime time.Time
	Size    int
}

type postingImage struct {
	Term string
	IDs  []uint32 // legacy uncompressed form; images written before Packed existed
	// Packed is the posting set in the bitset container codec (array /
	// bitmap / run picked by cardinality), the on-disk analogue of the
	// in-memory compressed containers. New images write Packed only; IDs
	// is still accepted so older images keep loading (gob leaves absent
	// fields zero).
	Packed []byte
}

// segmentImage is the persisted form of one compacted segment.
type segmentImage struct {
	ID       uint32
	Docs     []docImage
	Postings []postingImage
}

func ixErr(err error) error {
	return &vfs.PathError{Op: "loadindex", Path: "index", Err: err}
}

// writeBlock writes one framed block: magic | u16 version | u64 length
// | payload | u32 CRC-32C.
func writeBlock(w io.Writer, magic [4]byte, payload []byte) error {
	var hdr [14]byte
	copy(hdr[:4], magic[:])
	binary.BigEndian.PutUint16(hdr[4:6], indexVersion)
	binary.BigEndian.PutUint64(hdr[6:14], uint64(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("index: writing block header: %w", err)
	}
	if _, err := w.Write(payload); err != nil {
		return fmt.Errorf("index: writing block payload: %w", err)
	}
	var trailer [4]byte
	binary.BigEndian.PutUint32(trailer[:], crc32.Checksum(payload, indexCRC))
	if _, err := w.Write(trailer[:]); err != nil {
		return fmt.Errorf("index: writing block checksum: %w", err)
	}
	return nil
}

// Save writes a checksummed image of the index to w: a container header
// block, then one block per non-empty resident segment, each compacted
// (dead slots dropped). The in-memory index is not modified.
func (ix *Index) Save(w io.Writer) error {
	ix.mu.RLock()
	defer ix.mu.RUnlock()

	var blocks [][]byte
	var encErr error
	ix.eachSegmentLocked(func(s *segment) {
		if encErr != nil {
			return
		}
		img := encodeSegmentLocked(s)
		if img == nil {
			return
		}
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(img); err != nil {
			encErr = fmt.Errorf("index: encoding segment %d: %w", s.id, err)
			return
		}
		blocks = append(blocks, buf.Bytes())
	})
	if encErr != nil {
		return encErr
	}

	var hdr bytes.Buffer
	ch := containerHeader{Version: indexVersion, Segments: len(blocks), NextSeg: ix.nextSeg}
	if err := gob.NewEncoder(&hdr).Encode(&ch); err != nil {
		return fmt.Errorf("index: encoding header: %w", err)
	}
	if err := writeBlock(w, indexMagic, hdr.Bytes()); err != nil {
		return err
	}
	for _, b := range blocks {
		if err := writeBlock(w, segmentMagic, b); err != nil {
			return err
		}
	}
	return nil
}

// encodeSegmentLocked builds the compacted image of one segment, or nil
// if it holds no live documents. Caller holds ix.mu.
func encodeSegmentLocked(s *segment) *segmentImage {
	img := &segmentImage{ID: s.id}
	remap := make([]uint32, len(s.docs))
	for l, d := range s.docs {
		if !d.alive {
			remap[l] = noLocal
			continue
		}
		remap[l] = uint32(len(img.Docs))
		img.Docs = append(img.Docs, docImage{Path: d.path, ModTime: d.modTime, Size: d.size})
	}
	if len(img.Docs) == 0 {
		return nil
	}
	for term, bm := range s.postings {
		c := bitset.NewContainer()
		bm.Range(func(l uint32) bool {
			if nl := remap[l]; nl != noLocal {
				c.Add(nl) // remap is monotonic, so adds stay ascending
			}
			return true
		})
		if c.Any() {
			c.Pack()
			img.Postings = append(img.Postings, postingImage{Term: term, Packed: c.AppendBinary(nil)})
		}
	}
	return img
}

// LoadOption configures the index an image is loaded into, before any
// segments are installed. Tokenizers and transducers are code, not
// data, so a caller that used them at index time re-attaches them here
// — the usual RegisterTransducer/SetTokenizer calls would fail on the
// loaded (non-empty) store.
type LoadOption func(*Index)

// WithLoadTokenizer installs t as the loaded index's tokenizer.
func WithLoadTokenizer(t Tokenizer) LoadOption {
	return func(ix *Index) { ix.tok = t }
}

// WithLoadTransducer attaches a transducer to the loaded index (see
// RegisterTransducer for the extension convention).
func WithLoadTransducer(ext string, t Transducer) LoadOption {
	return func(ix *Index) { ix.registerTransducerLocked(ext, t) }
}

// readFrame reads one block frame whose header has already been
// consumed into hdr, verifying magic, version, length bound and CRC.
// Failures that lose the stream position wrap ErrBlockFraming.
func readFrame(r io.Reader, hdr [14]byte, magic [4]byte) (payload []byte, version uint16, err error) {
	if !bytes.Equal(hdr[:4], magic[:]) {
		return nil, 0, fmt.Errorf("%w: %w: bad magic %q", vfs.ErrCorruptVolume, ErrBlockFraming, hdr[:4])
	}
	version = binary.BigEndian.Uint16(hdr[4:6])
	length := binary.BigEndian.Uint64(hdr[6:14])
	if length > maxIndexPayload {
		return nil, 0, fmt.Errorf("%w: %w: implausible payload length %d", vfs.ErrCorruptVolume, ErrBlockFraming, length)
	}
	payload = make([]byte, int(length))
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, 0, fmt.Errorf("%w: %w: truncated payload: %v", vfs.ErrCorruptVolume, ErrBlockFraming, err)
	}
	var trailer [4]byte
	if _, err := io.ReadFull(r, trailer[:]); err != nil {
		return nil, 0, fmt.Errorf("%w: %w: missing checksum trailer: %v", vfs.ErrCorruptVolume, ErrBlockFraming, err)
	}
	if got, want := crc32.Checksum(payload, indexCRC), binary.BigEndian.Uint32(trailer[:]); got != want {
		// The frame itself is intact — length and trailer were present —
		// so the reader is positioned at the next block: not a framing
		// error, the caller may skip this block.
		return nil, 0, fmt.Errorf("%w: checksum mismatch (%08x != %08x)", vfs.ErrCorruptVolume, got, want)
	}
	return payload, version, nil
}

// decodeSegmentImage decodes and validates one segment block payload.
// gob panics on adversarial input are surfaced as errors.
func decodeSegmentImage(payload []byte) (img *segmentImage, err error) {
	defer func() {
		if p := recover(); p != nil {
			img, err = nil, fmt.Errorf("%w: segment decode panic: %v", vfs.ErrCorruptVolume, p)
		}
	}()
	img = new(segmentImage)
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(img); err != nil {
		return nil, fmt.Errorf("%w: decoding segment: %v", vfs.ErrCorruptVolume, err)
	}
	for _, pi := range img.Postings {
		for _, l := range pi.IDs {
			if int(l) >= len(img.Docs) {
				return nil, fmt.Errorf("%w: posting for %q references slot %d of %d", vfs.ErrCorruptVolume, pi.Term, l, len(img.Docs))
			}
		}
		if len(pi.Packed) > 0 {
			c, n, err := bitset.DecodeContainer(pi.Packed)
			if err != nil {
				return nil, fmt.Errorf("%w: posting for %q: %v", vfs.ErrCorruptVolume, pi.Term, err)
			}
			if n != len(pi.Packed) {
				return nil, fmt.Errorf("%w: posting for %q has %d trailing bytes", vfs.ErrCorruptVolume, pi.Term, len(pi.Packed)-n)
			}
			if c.Any() {
				var maxLocal uint32
				c.Range(func(l uint32) bool { maxLocal = l; return true })
				if int(maxLocal) >= len(img.Docs) {
					return nil, fmt.Errorf("%w: packed posting for %q references slot %d of %d", vfs.ErrCorruptVolume, pi.Term, maxLocal, len(img.Docs))
				}
			}
		}
	}
	return img, nil
}

// loadSegmentBlock reads one framed segment block from r and decodes it
// into its image. It is the unit the FuzzLoadSegment target drives:
// whatever the input, it must return an error rather than panic.
func loadSegmentBlock(r io.Reader) (*segmentImage, error) {
	var hdr [14]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: %w: short block header: %v", vfs.ErrCorruptVolume, ErrBlockFraming, err)
	}
	payload, version, err := readFrame(r, hdr, segmentMagic)
	if err != nil {
		return nil, err
	}
	if version != indexVersion {
		return nil, fmt.Errorf("%w: unsupported segment version %d", vfs.ErrCorruptVolume, version)
	}
	return decodeSegmentImage(payload)
}

// newLoadedIndex builds the empty index an image loads into, with the
// load options applied before any documents exist.
func newLoadedIndex(opts []LoadOption) *Index {
	ix := &Index{
		bySeg:         make(map[uint32]*segment),
		byPath:        make(map[string]DocID),
		forward:       make(map[uint32][]DocID),
		sealThreshold: DefaultSealThreshold,
		tok:           Tokenize,
	}
	for _, o := range opts {
		o(ix)
	}
	return ix
}

// installSegment attaches one decoded segment image as a sealed
// segment. Duplicate paths across blocks (only possible in a damaged
// image) resolve newest-wins, tombstoning the older slot.
func (ix *Index) installSegment(img *segmentImage) error {
	if _, dup := ix.bySeg[img.ID]; dup {
		return fmt.Errorf("%w: duplicate segment ID %d", vfs.ErrCorruptVolume, img.ID)
	}
	s := newSegment(img.ID)
	s.sealed = true
	for local, di := range img.Docs {
		s.docs = append(s.docs, docEntry{path: di.Path, modTime: di.ModTime, size: di.Size, alive: true})
		s.dirsAdd(di.Path, uint32(local))
	}
	s.packDirs()
	for _, pi := range img.Postings {
		bm := bitset.NewBitmap(len(s.docs))
		if len(pi.Packed) > 0 {
			c, _, err := bitset.DecodeContainer(pi.Packed)
			if err != nil {
				return fmt.Errorf("%w: posting for %q: %v", vfs.ErrCorruptVolume, pi.Term, err)
			}
			c.Range(func(l uint32) bool {
				bm.Add(l)
				return true
			})
		}
		for _, l := range pi.IDs {
			bm.Add(l)
		}
		s.postings[pi.Term] = bm
	}
	ix.bySeg[s.id] = s
	ix.sealed = append(ix.sealed, s)
	ix.totalSlots += len(s.docs)
	ix.liveDocs += len(s.docs)
	ix.version.Add(1)
	for local := range s.docs {
		p := s.docs[local].path
		if old, ok := ix.byPath[p]; ok {
			ix.tombstoneLocked(old)
		}
		ix.byPath[p] = makeID(s.id, uint32(local))
	}
	if s.id >= ix.nextSeg {
		ix.nextSeg = s.id + 1
	}
	return nil
}

// LoadIndex reads an image written by Save. Version-3 images load
// segment by segment: a block that fails its checksum or decode is
// skipped and loading continues, so one flipped bit costs one segment,
// not the index. In that case LoadIndex returns the partial index
// together with a *vfs.PathError wrapping vfs.ErrCorruptVolume
// describing the first damage; callers that can re-sync from the source
// tree (hac.LoadVolume) keep the partial index, strict callers treat
// the non-nil error as fatal. Version-2 monolithic images migrate into
// a single sealed segment.
//
// Load options re-attach tokenizers and transducers (code, not data)
// before segments install; see LoadOption.
func LoadIndex(r io.Reader, opts ...LoadOption) (*Index, error) {
	var hdr [14]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, ixErr(fmt.Errorf("%w: short header: %v", vfs.ErrCorruptVolume, err))
	}
	payload, version, err := readFrame(r, hdr, indexMagic)
	if err != nil {
		return nil, ixErr(err)
	}
	switch version {
	case legacyIndexVersion:
		return loadLegacyIndex(payload, opts)
	case indexVersion:
	default:
		return nil, ixErr(fmt.Errorf("%w: unsupported index version %d", vfs.ErrCorruptVolume, version))
	}

	var ch containerHeader
	if err := decodeContainerHeader(payload, &ch); err != nil {
		return nil, ixErr(err)
	}

	ix := newLoadedIndex(opts)
	var firstErr error
	for i := 0; i < ch.Segments; i++ {
		img, err := loadSegmentBlock(r)
		if err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("segment block %d of %d: %w", i, ch.Segments, err)
			}
			if errors.Is(err, ErrBlockFraming) {
				break // stream position lost: intact earlier blocks survive
			}
			continue // this block is damaged, the next may be fine
		}
		if err := ix.installSegment(img); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("segment block %d of %d: %w", i, ch.Segments, err)
		}
	}
	if ch.NextSeg > ix.nextSeg {
		ix.nextSeg = ch.NextSeg
	}
	ix.newActiveLocked()
	if firstErr != nil {
		return ix, ixErr(firstErr)
	}
	return ix, nil
}

func decodeContainerHeader(payload []byte, ch *containerHeader) (err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("%w: header decode panic: %v", vfs.ErrCorruptVolume, p)
		}
	}()
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(ch); err != nil {
		return fmt.Errorf("%w: decoding header: %v", vfs.ErrCorruptVolume, err)
	}
	if ch.Version != indexVersion {
		return fmt.Errorf("%w: header version %d in v%d frame", vfs.ErrCorruptVolume, ch.Version, indexVersion)
	}
	if ch.Segments < 0 || ch.Segments > 1<<20 {
		return fmt.Errorf("%w: implausible segment count %d", vfs.ErrCorruptVolume, ch.Segments)
	}
	return nil
}

// loadLegacyIndex migrates a version-2 monolithic payload: all
// documents land in one sealed segment and incremental updates resume
// in a fresh active segment on top.
func loadLegacyIndex(payload []byte, opts []LoadOption) (ix *Index, err error) {
	defer func() {
		if p := recover(); p != nil {
			ix, err = nil, ixErr(fmt.Errorf("%w: decode panic: %v", vfs.ErrCorruptVolume, p))
		}
	}()
	dec := gob.NewDecoder(bytes.NewReader(payload))
	var lh legacyHeader
	if err := dec.Decode(&lh); err != nil {
		return nil, ixErr(fmt.Errorf("%w: decoding legacy header: %v", vfs.ErrCorruptVolume, err))
	}
	if lh.Version != legacyIndexVersion {
		return nil, ixErr(fmt.Errorf("%w: unsupported version %d", vfs.ErrCorruptVolume, lh.Version))
	}
	if lh.Docs < 0 || lh.Terms < 0 {
		return nil, ixErr(fmt.Errorf("%w: negative counts in header", vfs.ErrCorruptVolume))
	}
	img := &segmentImage{ID: 0}
	for i := 0; i < lh.Docs; i++ {
		var di docImage
		if err := dec.Decode(&di); err != nil {
			return nil, ixErr(fmt.Errorf("%w: decoding document %d: %v", vfs.ErrCorruptVolume, i, err))
		}
		img.Docs = append(img.Docs, di)
	}
	for i := 0; i < lh.Terms; i++ {
		var pi postingImage
		if err := dec.Decode(&pi); err != nil {
			return nil, ixErr(fmt.Errorf("%w: decoding posting %d: %v", vfs.ErrCorruptVolume, i, err))
		}
		for _, l := range pi.IDs {
			if int(l) >= lh.Docs {
				return nil, ixErr(fmt.Errorf("%w: posting for %q references document %d of %d", vfs.ErrCorruptVolume, pi.Term, l, lh.Docs))
			}
		}
		if len(pi.IDs) > 0 {
			img.Postings = append(img.Postings, pi)
		}
	}
	ix = newLoadedIndex(opts)
	if lh.Docs > 0 {
		if err := ix.installSegment(img); err != nil {
			return nil, ixErr(err)
		}
	}
	ix.newActiveLocked()
	return ix, nil
}
