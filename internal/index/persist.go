package index

import (
	"encoding/gob"
	"fmt"
	"io"
	"time"

	"hacfs/internal/bitset"
)

// Index persistence. Glimpse keeps its index on disk and loads it at
// startup; Save/Load give this index the same property, so a server
// (cmd/hacindexd) can restart without re-reading its document tree.
// Tombstoned documents are compacted away in the image.

const indexVersion = 1

type indexHeader struct {
	Version int
	Docs    int
	Terms   int
}

type docImage struct {
	Path    string
	ModTime time.Time
	Size    int
}

type postingImage struct {
	Term string
	IDs  []uint32
}

// Save writes a compacted image of the index to w. The in-memory index
// is not modified (a compacted copy of the ID space is written, so
// Load yields dense IDs regardless of tombstones).
func (ix *Index) Save(w io.Writer) error {
	ix.mu.RLock()
	defer ix.mu.RUnlock()

	// Dense remap of live documents.
	remap := make(map[DocID]uint32, len(ix.docs))
	var docs []docImage
	for id, d := range ix.docs {
		if !d.alive {
			continue
		}
		remap[DocID(id)] = uint32(len(docs))
		docs = append(docs, docImage{Path: d.path, ModTime: d.modTime, Size: d.size})
	}

	enc := gob.NewEncoder(w)
	if err := enc.Encode(indexHeader{Version: indexVersion, Docs: len(docs), Terms: len(ix.postings)}); err != nil {
		return fmt.Errorf("index: encoding header: %w", err)
	}
	for i := range docs {
		if err := enc.Encode(&docs[i]); err != nil {
			return fmt.Errorf("index: encoding document %q: %w", docs[i].Path, err)
		}
	}
	for term, bm := range ix.postings {
		pi := postingImage{Term: term}
		bm.Range(func(id uint32) bool {
			if nid, ok := remap[id]; ok {
				pi.IDs = append(pi.IDs, nid)
			}
			return true
		})
		if len(pi.IDs) == 0 {
			pi.IDs = nil
		}
		if err := enc.Encode(&pi); err != nil {
			return fmt.Errorf("index: encoding term %q: %w", term, err)
		}
	}
	return nil
}

// LoadIndex reads an image written by Save. Tokenizers and transducers
// are code, not data: register them on the returned index before
// adding new documents.
func LoadIndex(r io.Reader) (*Index, error) {
	dec := gob.NewDecoder(r)
	var hdr indexHeader
	if err := dec.Decode(&hdr); err != nil {
		return nil, fmt.Errorf("index: decoding header: %w", err)
	}
	if hdr.Version != indexVersion {
		return nil, fmt.Errorf("index: unsupported version %d", hdr.Version)
	}
	ix := New()
	for i := 0; i < hdr.Docs; i++ {
		var di docImage
		if err := dec.Decode(&di); err != nil {
			return nil, fmt.Errorf("index: decoding document %d: %w", i, err)
		}
		id := DocID(len(ix.docs))
		ix.docs = append(ix.docs, docEntry{path: di.Path, modTime: di.ModTime, size: di.Size, alive: true})
		ix.byPath[di.Path] = id
		ix.alive.Add(id)
	}
	for i := 0; i < hdr.Terms; i++ {
		var pi postingImage
		if err := dec.Decode(&pi); err != nil {
			return nil, fmt.Errorf("index: decoding posting %d: %w", i, err)
		}
		if len(pi.IDs) == 0 {
			continue
		}
		bm := ix.postings[pi.Term]
		if bm == nil {
			bm = bitset.NewBitmap(hdr.Docs)
			ix.postings[pi.Term] = bm
		}
		for _, id := range pi.IDs {
			if int(id) >= hdr.Docs {
				return nil, fmt.Errorf("index: posting for %q references document %d of %d", pi.Term, id, hdr.Docs)
			}
			bm.Add(id)
		}
	}
	return ix, nil
}
