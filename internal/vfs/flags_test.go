package vfs

import (
	"errors"
	"fmt"
	"sync"
	"testing"
)

// TestOpenFileFlagMatrix pins the behavior of every meaningful flag
// combination against both an existing and a missing file.
func TestOpenFileFlagMatrix(t *testing.T) {
	cases := []struct {
		name      string
		flag      int
		exists    bool
		wantErr   error // nil means success
		wantSize  int64 // size right after open (existing file starts at 5)
		canRead   bool
		canWrite  bool
		appendsTo bool
	}{
		{"read-existing", ORead, true, nil, 5, true, false, false},
		{"read-missing", ORead, false, ErrNotExist, 0, false, false, false},
		{"write-existing", OWrite, true, nil, 5, false, true, false},
		{"write-missing", OWrite, false, ErrNotExist, 0, false, false, false},
		{"create-missing", ORead | OWrite | OCreate, false, nil, 0, true, true, false},
		{"create-existing-keeps", ORead | OWrite | OCreate, true, nil, 5, true, true, false},
		{"trunc", ORead | OWrite | OCreate | OTrunc, true, nil, 0, true, true, false},
		{"excl-existing", OWrite | OCreate | OExcl, true, ErrExist, 0, false, false, false},
		{"excl-missing", ORead | OWrite | OCreate | OExcl, false, nil, 0, true, true, false},
		{"append", OWrite | OAppend, true, nil, 5, false, true, true},
		{"no-direction", OCreate, true, ErrInvalid, 0, false, false, false},
		{"trunc-readonly", ORead | OTrunc, true, ErrInvalid, 0, false, false, false},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			fs := New()
			if c.exists {
				mustWrite(t, fs, "/f", "12345")
			}
			f, err := fs.OpenFile("/f", c.flag)
			if c.wantErr != nil {
				if !errors.Is(err, c.wantErr) {
					t.Fatalf("err = %v, want %v", err, c.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			info, err := f.Stat()
			if err != nil || info.Size != c.wantSize {
				t.Fatalf("size = %d, want %d (%v)", info.Size, c.wantSize, err)
			}
			_, rerr := f.ReadAt(make([]byte, 1), 0)
			canRead := rerr == nil || errors.Is(rerr, errEOF())
			if canRead != c.canRead {
				t.Fatalf("canRead = %v (err %v), want %v", canRead, rerr, c.canRead)
			}
			_, werr := f.Write([]byte("XY"))
			if (werr == nil) != c.canWrite {
				t.Fatalf("canWrite = %v (err %v), want %v", werr == nil, werr, c.canWrite)
			}
			if c.appendsTo && werr == nil {
				st, _ := f.Stat()
				if st.Size != c.wantSize+2 {
					t.Fatalf("append size = %d, want %d", st.Size, c.wantSize+2)
				}
				data, _ := fs.ReadFile("/f")
				if string(data[:5]) != "12345" {
					t.Fatalf("append clobbered prefix: %q", data)
				}
			}
		})
	}
}

func errEOF() error { return errIOEOF }

var errIOEOF = func() error {
	fs := New()
	mustWriteQuiet(fs, "/e", "")
	f, _ := fs.Open("/e")
	_, err := f.ReadAt(make([]byte, 1), 0)
	return err
}()

func mustWriteQuiet(fs *MemFS, p, data string) {
	if err := fs.WriteFile(p, []byte(data)); err != nil {
		panic(err)
	}
}

// TestConcurrentMemFS hammers one MemFS from many goroutines; run
// under -race.
func TestConcurrentMemFS(t *testing.T) {
	fs := New()
	mustMkdirAll(t, fs, "/shared")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			dir := fmt.Sprintf("/shared/g%d", g)
			if err := fs.MkdirAll(dir); err != nil {
				t.Errorf("mkdir: %v", err)
				return
			}
			for i := 0; i < 50; i++ {
				p := fmt.Sprintf("%s/f%d", dir, i%7)
				switch i % 5 {
				case 0, 1:
					if err := fs.WriteFile(p, []byte(fmt.Sprintf("%d-%d", g, i))); err != nil {
						t.Errorf("write: %v", err)
						return
					}
				case 2:
					fs.ReadFile(p) // may race with remove; error OK
				case 3:
					fs.Stat(p)
					fs.ReadDir(dir)
				case 4:
					fs.Remove(p) // may not exist; error OK
				}
			}
		}()
	}
	wg.Wait()
	// The tree is still traversable and self-consistent.
	if _, err := Files(fs, "/"); err != nil {
		t.Fatal(err)
	}
}
