package vfs

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

// model is a trivial reference implementation of the file system: a map
// from path to kind/content, with parent checks done by string
// manipulation. The real MemFS must agree with it on every operation's
// success and on the final state.
type model struct {
	dirs  map[string]bool
	files map[string]string
	links map[string]string
}

func newModel() *model {
	return &model{
		dirs:  map[string]bool{"/": true},
		files: map[string]string{},
		links: map[string]string{},
	}
}

func (m *model) exists(p string) bool {
	return m.dirs[p] || m.hasFile(p) || m.hasLink(p)
}
func (m *model) hasFile(p string) bool { _, ok := m.files[p]; return ok }
func (m *model) hasLink(p string) bool { _, ok := m.links[p]; return ok }

func (m *model) mkdir(p string) bool {
	if m.exists(p) || !m.dirs[Dir(p)] {
		return false
	}
	m.dirs[p] = true
	return true
}

// resolve follows symlink chains to their final target.
func (m *model) resolve(p string) string {
	for i := 0; i < 10; i++ {
		t, ok := m.links[p]
		if !ok {
			return p
		}
		if !IsAbs(t) {
			t = Join(Dir(p), t)
		}
		p = t
	}
	return p
}

func (m *model) write(p, content string) bool {
	if m.hasLink(p) {
		// Writing through a symlink writes the target; the FS refuses
		// to create a new file through a dangling link.
		rp := m.resolve(p)
		if !m.exists(rp) {
			return false
		}
		p = rp
	}
	if m.dirs[p] || m.hasLink(p) || !m.dirs[Dir(p)] {
		return false
	}
	m.files[p] = content
	return true
}

func (m *model) symlink(target, link string) bool {
	if m.exists(link) || !m.dirs[Dir(link)] {
		return false
	}
	m.links[link] = target
	return true
}

func (m *model) remove(p string) bool {
	switch {
	case m.hasFile(p):
		delete(m.files, p)
	case m.hasLink(p):
		delete(m.links, p)
	case m.dirs[p] && p != "/":
		for d := range m.dirs {
			if d != p && HasPrefix(d, p) {
				return false
			}
		}
		for f := range m.files {
			if HasPrefix(f, p) {
				return false
			}
		}
		for l := range m.links {
			if HasPrefix(l, p) {
				return false
			}
		}
		delete(m.dirs, p)
	default:
		return false
	}
	return true
}

// state returns a canonical dump of the model.
func (m *model) state() []string {
	var out []string
	for d := range m.dirs {
		out = append(out, "d "+d)
	}
	for f, content := range m.files {
		out = append(out, "f "+f+" "+content)
	}
	for l, target := range m.links {
		out = append(out, "l "+l+" "+target)
	}
	sort.Strings(out)
	return out
}

// realState dumps the MemFS in the same format.
func realState(t *testing.T, fs *MemFS) []string {
	t.Helper()
	var out []string
	err := Walk(fs, "/", func(p string, info Info) error {
		switch info.Type {
		case TypeDir:
			out = append(out, "d "+p)
		case TypeFile:
			data, err := fs.ReadFile(p)
			if err != nil {
				return err
			}
			out = append(out, "f "+p+" "+string(data))
		case TypeSymlink:
			out = append(out, "l "+p+" "+info.Target)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("dump: %v", err)
	}
	sort.Strings(out)
	return out
}

// TestModelEquivalence drives MemFS and the reference model with the
// same random operation stream and requires identical outcomes. Rename
// is exercised separately (its semantics are richer than the model).
func TestModelEquivalence(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			fs := New()
			m := newModel()
			paths := []string{"/a", "/b", "/a/x", "/a/y", "/b/z", "/a/x/deep"}
			// Symlinks only at leaf-only paths that never appear as a
			// parent of another candidate: the model does not understand
			// symlink traversal in intermediate components (the real FS
			// resolves them), so keeping links out of the directory
			// skeleton keeps the two comparable.
			linkPaths := []string{"/ln1", "/a/ln2", "/b/ln3"}
			all := append(append([]string{}, paths...), linkPaths...)
			for step := 0; step < 400; step++ {
				p := all[rng.Intn(len(all))]
				var realOK, modelOK bool
				switch op := rng.Intn(4); op {
				case 0:
					realOK = fs.Mkdir(p) == nil
					modelOK = m.mkdir(p)
				case 1:
					content := fmt.Sprintf("c%d", step)
					realOK = fs.WriteFile(p, []byte(content)) == nil
					modelOK = m.write(p, content)
				case 2:
					p = linkPaths[rng.Intn(len(linkPaths))]
					target := paths[rng.Intn(len(paths))]
					realOK = fs.Symlink(target, p) == nil
					modelOK = m.symlink(target, p)
				case 3:
					realOK = fs.Remove(p) == nil
					modelOK = m.remove(p)
				}
				if realOK != modelOK {
					t.Fatalf("step %d: path %s diverged (real %v, model %v)\nmodel: %v\nreal:  %v",
						step, p, realOK, modelOK, m.state(), realState(t, fs))
				}
			}
			if got, want := realState(t, fs), m.state(); !equalStrings(got, want) {
				t.Fatalf("final state diverged:\nmodel: %v\nreal:  %v", want, got)
			}
		})
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestWriteFileIntoLinkedDir confirms that WriteFile through a symlink
// to a directory behaves like writing into the directory (the model
// does not cover symlink traversal, so this is pinned separately).
func TestWriteFileIntoLinkedDir(t *testing.T) {
	fs := New()
	mustMkdirAll(t, fs, "/real")
	if err := fs.Symlink("/real", "/alias"); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("/alias/f.txt", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Stat("/real/f.txt"); err != nil {
		t.Fatalf("write through dir symlink missed: %v", err)
	}
}

// TestRemoveOpenFile pins the semantics of removing a file with a live
// handle: the handle keeps working on the detached node (as with POSIX
// unlink).
func TestRemoveOpenFile(t *testing.T) {
	fs := New()
	mustWrite(t, fs, "/f", "alive")
	h, err := fs.Open("/f")
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	if err := fs.Remove("/f"); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 5)
	if n, _ := h.Read(buf); n != 5 || string(buf) != "alive" {
		t.Fatalf("read after unlink = %q", buf[:n])
	}
	if _, err := fs.Stat("/f"); !errors.Is(err, ErrNotExist) {
		t.Fatal("file still visible after remove")
	}
}
