package vfs

import (
	"sort"

	"hacfs/internal/obs"
)

// PublishMetrics surfaces the fault layer's counters into reg as
// scrape-time samples: the aggregate faultfs_{ops,injected,rejected,
// crashes}_total series plus per-operation faultfs_op_total{op=...} and
// faultfs_op_errors_total{op=...}. A collector (rather than live
// counters) keeps the fault path free of registry writes — Stats() is
// consulted only when someone scrapes.
func (fs *FaultFS) PublishMetrics(reg *obs.Registry) {
	reg.RegisterCollector(func(emit func(name string, labels obs.Labels, value float64)) {
		s := fs.Stats()
		emit("faultfs_ops_total", nil, float64(s.Ops))
		emit("faultfs_injected_total", nil, float64(s.Injected))
		emit("faultfs_rejected_total", nil, float64(s.Rejected))
		emit("faultfs_crashes_total", nil, float64(s.Crashes))
		for _, op := range sortedOpKeys(s.PerOp) {
			emit("faultfs_op_total", obs.Labels{"op": op}, float64(s.PerOp[op]))
		}
		for _, op := range sortedOpKeys(s.Errors) {
			emit("faultfs_op_errors_total", obs.Labels{"op": op}, float64(s.Errors[op]))
		}
	})
}

// sortedOpKeys keeps collector output deterministic across scrapes.
func sortedOpKeys(m map[string]uint64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
