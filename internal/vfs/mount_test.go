package vfs

import (
	"errors"
	"testing"
)

func newMounted(t *testing.T) (host, guest *MemFS) {
	t.Helper()
	host = New()
	guest = New()
	mustMkdirAll(t, host, "/mnt")
	mustWrite(t, guest, "/g.txt", "guest data")
	mustMkdirAll(t, guest, "/gdir")
	if err := host.Mount("/mnt", guest); err != nil {
		t.Fatal(err)
	}
	return host, guest
}

func TestMountReadThrough(t *testing.T) {
	host, _ := newMounted(t)
	data, err := host.ReadFile("/mnt/g.txt")
	if err != nil || string(data) != "guest data" {
		t.Fatalf("ReadFile through mount = %q, %v", data, err)
	}
	entries, err := host.ReadDir("/mnt")
	if err != nil || len(entries) != 2 {
		t.Fatalf("ReadDir through mount = %v, %v", entries, err)
	}
	// Stat on the mount point reports the guest root.
	info, err := host.Stat("/mnt")
	if err != nil || !info.IsDir() {
		t.Fatalf("Stat mount point = %+v, %v", info, err)
	}
}

func TestMountWriteThrough(t *testing.T) {
	host, guest := newMounted(t)
	if err := host.WriteFile("/mnt/new.txt", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if data, err := guest.ReadFile("/new.txt"); err != nil || string(data) != "x" {
		t.Fatalf("guest did not receive write: %q, %v", data, err)
	}
	if err := host.MkdirAll("/mnt/deep/dir"); err != nil {
		t.Fatal(err)
	}
	if info, err := guest.Stat("/deep/dir"); err != nil || !info.IsDir() {
		t.Fatalf("guest MkdirAll missing: %v", err)
	}
	if err := host.Symlink("/g.txt", "/mnt/ln"); err != nil {
		t.Fatal(err)
	}
	if target, err := guest.Readlink("/ln"); err != nil || target != "/g.txt" {
		t.Fatalf("guest symlink = %q, %v", target, err)
	}
}

func TestMountShadowsLocalContents(t *testing.T) {
	host := New()
	guest := New()
	mustMkdirAll(t, host, "/mnt")
	mustWrite(t, host, "/mnt/hidden", "local")
	if err := host.Mount("/mnt", guest); err != nil {
		t.Fatal(err)
	}
	if _, err := host.ReadFile("/mnt/hidden"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("shadowed file visible: %v", err)
	}
	if err := host.Unmount("/mnt"); err != nil {
		t.Fatal(err)
	}
	if data, err := host.ReadFile("/mnt/hidden"); err != nil || string(data) != "local" {
		t.Fatalf("after unmount = %q, %v", data, err)
	}
}

func TestMountErrors(t *testing.T) {
	host, guest := newMounted(t)
	// Mounting on a missing dir.
	if err := host.Mount("/missing", guest); !errors.Is(err, ErrNotExist) {
		t.Fatalf("mount on missing err = %v", err)
	}
	// Mounting on a file.
	mustWrite(t, host, "/f", "x")
	if err := host.Mount("/f", New()); !errors.Is(err, ErrNotDir) {
		t.Fatalf("mount on file err = %v", err)
	}
	// Double mount.
	mustMkdirAll(t, host, "/other")
	if err := host.Mount("/mnt", New()); !errors.Is(err, ErrBusy) {
		t.Fatalf("double mount err = %v", err)
	}
	// Self mount.
	if err := host.Mount("/other", host); !errors.Is(err, ErrInvalid) {
		t.Fatalf("self mount err = %v", err)
	}
	// nil mount.
	if err := host.Mount("/other", nil); !errors.Is(err, ErrInvalid) {
		t.Fatalf("nil mount err = %v", err)
	}
	// Unmount of non-mount.
	if err := host.Unmount("/other"); !errors.Is(err, ErrInvalid) {
		t.Fatalf("unmount non-mount err = %v", err)
	}
}

func TestMountPointProtection(t *testing.T) {
	host, _ := newMounted(t)
	if err := host.Remove("/mnt"); !errors.Is(err, ErrBusy) {
		t.Fatalf("remove mount point err = %v", err)
	}
	if err := host.RemoveAll("/mnt"); !errors.Is(err, ErrBusy) {
		t.Fatalf("removeall mount point err = %v", err)
	}
	if err := host.Rename("/mnt", "/elsewhere"); !errors.Is(err, ErrBusy) {
		t.Fatalf("rename mount point err = %v", err)
	}
	// RemoveAll of an ancestor containing a mount is also refused.
	host2 := New()
	mustMkdirAll(t, host2, "/a/mnt")
	if err := host2.Mount("/a/mnt", New()); err != nil {
		t.Fatal(err)
	}
	if err := host2.RemoveAll("/a"); !errors.Is(err, ErrBusy) {
		t.Fatalf("removeall over mount err = %v", err)
	}
}

func TestRenameWithinMount(t *testing.T) {
	host, guest := newMounted(t)
	if err := host.Rename("/mnt/g.txt", "/mnt/renamed.txt"); err != nil {
		t.Fatal(err)
	}
	if _, err := guest.Stat("/renamed.txt"); err != nil {
		t.Fatalf("rename within mount did not reach guest: %v", err)
	}
	// Rename across the mount boundary is refused.
	mustWrite(t, host, "/local", "x")
	if err := host.Rename("/local", "/mnt/moved"); !errors.Is(err, ErrCrossMount) {
		t.Fatalf("cross-mount rename err = %v", err)
	}
	if err := host.Rename("/mnt/renamed.txt", "/pulled"); !errors.Is(err, ErrCrossMount) {
		t.Fatalf("cross-mount rename out err = %v", err)
	}
}

func TestNestedMounts(t *testing.T) {
	a, b, c := New(), New(), New()
	mustMkdirAll(t, a, "/m1")
	mustMkdirAll(t, b, "/m2")
	mustWrite(t, c, "/deep.txt", "deep")
	if err := a.Mount("/m1", b); err != nil {
		t.Fatal(err)
	}
	if err := a.Mount("/m1/m2", c); err == nil {
		// Mount through a mount must fail on the host...
		t.Fatal("mount through mount succeeded on host")
	}
	// ...but mounting directly on b works and is visible through a.
	if err := b.Mount("/m2", c); err != nil {
		t.Fatal(err)
	}
	data, err := a.ReadFile("/m1/m2/deep.txt")
	if err != nil || string(data) != "deep" {
		t.Fatalf("nested mount read = %q, %v", data, err)
	}
}

func TestMountPoints(t *testing.T) {
	host, _ := newMounted(t)
	mps := host.MountPoints()
	if len(mps) != 1 || mps[0] != "/mnt" {
		t.Fatalf("MountPoints = %v", mps)
	}
}

func TestSymlinkIntoMount(t *testing.T) {
	host, _ := newMounted(t)
	if err := host.Symlink("/mnt/g.txt", "/shortcut"); err != nil {
		t.Fatal(err)
	}
	data, err := host.ReadFile("/shortcut")
	if err != nil || string(data) != "guest data" {
		t.Fatalf("symlink into mount = %q, %v", data, err)
	}
}
