package cas

import (
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"hacfs/internal/vfs"
)

// FS is a copy-on-write hierarchical file system whose file contents
// live in a shared BlobStore. The tree is an immutable base plus a
// mutable overlay, tracked per node with a generation stamp: nodes
// carrying the FS's current generation are the overlay and may be
// mutated in place; every other node belongs to a sealed base and is
// copied (shallowly — children are shared) the first time a mutation
// reaches it. Sealing the overlay into a new base — Snapshot, Clone —
// is therefore O(1): bump the generation and share the root.
//
// FS implements the full vfs.FileSystem surface with MemFS semantics
// (POSIX rename rules, lazy symlink resolution, syntactic mount
// points), so hac, the index and FaultFS-based model checks run on it
// unchanged.
type FS struct {
	store *BlobStore

	mu     sync.RWMutex
	root   *inode
	gen    uint64
	nextID uint64
	now    func() time.Time
	mounts map[uint64]vfs.FileSystem // directory inode id → mounted fs
	// dirtyFiles tracks overlay file inodes whose content currently
	// lives in an unhashed buffer (open-handle write sessions). They
	// are flushed into the store before any manifest materializes.
	dirtyFiles map[*inode]bool
	stats      vfs.Stats
}

var _ vfs.FileSystem = (*FS)(nil)

// generations are allocated process-wide so that no two FS instances —
// in particular a clone and its source — can ever share a current
// generation and mistake each other's sealed nodes for overlay.
var genCounter atomic.Uint64

// inode is one node of the COW tree. A node whose gen matches the
// owning FS's current generation is mutable overlay; all others are
// frozen. Because mutation always copies the path from the root down,
// an overlay node's ancestors are all overlay — equivalently, a frozen
// directory's subtree is entirely frozen.
type inode struct {
	id      uint64
	gen     uint64
	typ     vfs.NodeType
	name    string
	modTime time.Time

	children map[string]*inode // directories

	// File content is either sealed (hasHash: content under hash in the
	// store) or a dirty buffer (hasDirty). owned marks a sealed hash
	// whose store reference belongs to this FS's live overlay — the
	// reference is released when the content is overwritten or the file
	// removed. Hashes inherited from a frozen base are not owned: their
	// references pin the base.
	hash     Hash
	size     int64
	hasHash  bool
	owned    bool
	dirty    []byte
	hasDirty bool

	target string // symlinks
}

func (n *inode) isDir() bool { return n.typ == vfs.TypeDir }

func (n *inode) info() vfs.Info {
	inf := vfs.Info{Name: n.name, Ino: n.id, Type: n.typ, ModTime: n.modTime}
	switch n.typ {
	case vfs.TypeFile:
		if n.hasDirty {
			inf.Size = int64(len(n.dirty))
		} else {
			inf.Size = n.size
		}
	case vfs.TypeSymlink:
		inf.Target = n.target
	}
	return inf
}

// New returns an empty file system backed by store (a fresh private
// store when nil).
func New(store *BlobStore) *FS {
	if store == nil {
		store = NewStore()
	}
	fs := &FS{
		store:      store,
		gen:        genCounter.Add(1),
		now:        time.Now,
		mounts:     make(map[uint64]vfs.FileSystem),
		dirtyFiles: make(map[*inode]bool),
	}
	fs.root = &inode{
		id:       fs.allocID(),
		gen:      fs.gen,
		typ:      vfs.TypeDir,
		name:     "/",
		children: make(map[string]*inode),
		modTime:  fs.now(),
	}
	return fs
}

// Store returns the blob store backing this file system.
func (fs *FS) Store() *BlobStore { return fs.store }

// SetClock replaces the time source, for deterministic tests.
func (fs *FS) SetClock(now func() time.Time) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.now = now
}

// Stats returns a snapshot of the operation counters.
func (fs *FS) Stats() vfs.StatsSnapshot { return fs.stats.Snapshot() }

func (fs *FS) allocID() uint64 {
	fs.nextID++
	return fs.nextID
}

func pe(op, path string, err error) error {
	return &vfs.PathError{Op: op, Path: path, Err: err}
}

func components(p string) []string {
	p = strings.Trim(p, "/")
	if p == "" {
		return nil
	}
	return strings.Split(p, "/")
}

// walkTarget is the outcome of a path walk: a local trail of nodes from
// the root to the target, or a delegation into a mounted file system.
type walkTarget struct {
	trail []*inode // root … target; nil when delegated
	fs    vfs.FileSystem
	rest  string
}

func (t walkTarget) n() *inode { return t.trail[len(t.trail)-1] }

const maxSymlinkDepth = 40

// walk resolves p, mirroring MemFS.walk exactly (symlink restart
// semantics, mount delegation) but additionally recording the trail of
// nodes traversed so mutations can copy the path. Caller holds fs.mu.
func (fs *FS) walk(p string, followLast bool) (walkTarget, error) {
	clean, err := vfs.Clean(p)
	if err != nil {
		return walkTarget{}, err
	}
	comps := components(clean)
	trail := []*inode{fs.root}
	depth := 0
	i := 0
	for {
		cur := trail[len(trail)-1]
		if m, ok := fs.mounts[cur.id]; ok {
			return walkTarget{fs: m, rest: "/" + vfs.Join(comps[i:]...)}, nil
		}
		if i == len(comps) {
			return walkTarget{trail: trail}, nil
		}
		if !cur.isDir() {
			return walkTarget{}, vfs.ErrNotDir
		}
		child, ok := cur.children[comps[i]]
		if !ok {
			return walkTarget{}, vfs.ErrNotExist
		}
		if child.typ == vfs.TypeSymlink && (i < len(comps)-1 || followLast) {
			depth++
			if depth > maxSymlinkDepth {
				return walkTarget{}, vfs.ErrLoop
			}
			t := child.target
			if t == "" {
				return walkTarget{}, vfs.ErrInvalid
			}
			rest := comps[i+1:]
			if vfs.IsAbs(t) {
				trail = trail[:1]
				comps = append(components(t), rest...)
			} else {
				// Relative targets resolve from the link's directory
				// (the current trail tip), as in MemFS.
				comps = append(components("/"+t), rest...)
			}
			i = 0
			continue
		}
		trail = append(trail, child)
		i++
	}
}

// walkParent resolves the directory containing p. Caller holds fs.mu.
func (fs *FS) walkParent(p string) (t walkTarget, base string, err error) {
	clean, err := vfs.Clean(p)
	if err != nil {
		return walkTarget{}, "", err
	}
	if clean == "/" {
		return walkTarget{}, "", vfs.ErrInvalid
	}
	dirPath, base := vfs.Split(clean)
	t, err = fs.walk(dirPath, true)
	if err != nil {
		return walkTarget{}, "", err
	}
	if t.fs != nil {
		return walkTarget{fs: t.fs, rest: vfs.Join(t.rest, base)}, "", nil
	}
	if !t.n().isDir() {
		return walkTarget{}, "", vfs.ErrNotDir
	}
	if m, ok := fs.mounts[t.n().id]; ok {
		return walkTarget{fs: m, rest: "/" + base}, "", nil
	}
	return t, base, nil
}

// copyNode makes an overlay copy of a frozen node: same identity,
// current generation, shared children and content. The copy does not
// own its hash reference — that stays with the frozen base.
func (fs *FS) copyNode(n *inode) *inode {
	c := &inode{
		id:      n.id,
		gen:     fs.gen,
		typ:     n.typ,
		name:    n.name,
		modTime: n.modTime,
		hash:    n.hash,
		size:    n.size,
		hasHash: n.hasHash,
		target:  n.target,
	}
	if n.children != nil {
		c.children = make(map[string]*inode, len(n.children))
		for k, v := range n.children {
			c.children[k] = v
		}
	}
	return c
}

// cow makes every node on the trail overlay (copying frozen ones and
// relinking the copies) and returns the now-mutable final node. Caller
// holds fs.mu for writing.
func (fs *FS) cow(trail []*inode) *inode {
	if trail[0].gen != fs.gen {
		c := fs.copyNode(trail[0])
		fs.root = c
		trail[0] = c
	}
	for i := 1; i < len(trail); i++ {
		if trail[i].gen != fs.gen {
			c := fs.copyNode(trail[i])
			trail[i-1].children[c.name] = c
			trail[i] = c
		}
	}
	return trail[len(trail)-1]
}

// content returns the current bytes of a file node (store-backed or
// dirty buffer). The slice must not be modified. Caller holds fs.mu.
func (fs *FS) content(n *inode) []byte {
	if n.hasDirty {
		return n.dirty
	}
	if !n.hasHash {
		return nil
	}
	data, ok := fs.store.Get(n.hash)
	if !ok {
		// Unreachable unless the store was externally corrupted; treat
		// as empty rather than panic.
		return nil
	}
	return data
}

// dropContent releases an overlay node's content: the owned store
// reference if sealed, the dirty-set entry if buffered. Caller holds
// fs.mu for writing; n must be overlay.
func (fs *FS) dropContent(n *inode) {
	if n.owned && n.hasHash {
		fs.store.Unref(n.hash)
	}
	n.hash, n.hasHash, n.owned = Hash{}, false, false
	if n.hasDirty {
		n.dirty, n.hasDirty = nil, false
		delete(fs.dirtyFiles, n)
	}
}

// setContent replaces an overlay file node's content with data, sealed
// into the store immediately. Caller holds fs.mu for writing.
func (fs *FS) setContent(n *inode, data []byte) {
	fs.dropContent(n)
	h, _ := fs.store.Put(data)
	n.hash, n.hasHash, n.owned = h, true, true
	n.size = int64(len(data))
	n.modTime = fs.now()
}

// flush seals one dirty node's buffer into the store. Caller holds
// fs.mu for writing; n must be overlay and dirty.
func (fs *FS) flush(n *inode) {
	data := n.dirty
	n.dirty, n.hasDirty = nil, false
	delete(fs.dirtyFiles, n)
	h, _ := fs.store.Put(data)
	n.hash, n.hasHash, n.owned = h, true, true
	n.size = int64(len(data))
}

// flushAll seals every dirty buffer. Caller holds fs.mu for writing.
func (fs *FS) flushAll() {
	for n := range fs.dirtyFiles {
		fs.flush(n)
	}
}

// releaseOverlay walks the overlay rooted at n releasing owned content
// references — the bookkeeping half of removing a subtree. Frozen
// subtrees are skipped wholesale: their references belong to sealed
// bases. Caller holds fs.mu for writing.
func (fs *FS) releaseOverlay(n *inode) {
	if n.gen != fs.gen {
		return
	}
	switch n.typ {
	case vfs.TypeFile:
		fs.dropContent(n)
	case vfs.TypeDir:
		for _, c := range n.children {
			fs.releaseOverlay(c)
		}
	}
}

// ---------------------------------------------------------------------
// vfs.FileSystem
// ---------------------------------------------------------------------

// Mkdir creates a directory. The parent must exist.
func (fs *FS) Mkdir(p string) error {
	fs.stats.Mkdirs.Add(1)
	fs.mu.Lock()
	t, base, err := fs.walkParent(p)
	if err != nil {
		fs.mu.Unlock()
		return pe("mkdir", p, err)
	}
	if t.fs != nil {
		fs.mu.Unlock()
		return t.fs.Mkdir(t.rest)
	}
	defer fs.mu.Unlock()
	if _, ok := t.n().children[base]; ok {
		return pe("mkdir", p, vfs.ErrExist)
	}
	dir := fs.cow(t.trail)
	dir.children[base] = &inode{
		id:       fs.allocID(),
		gen:      fs.gen,
		typ:      vfs.TypeDir,
		name:     base,
		children: make(map[string]*inode),
		modTime:  fs.now(),
	}
	dir.modTime = fs.now()
	return nil
}

// MkdirAll creates a directory and any missing parents. It succeeds if
// the directory already exists.
func (fs *FS) MkdirAll(p string) error {
	clean, err := vfs.Clean(p)
	if err != nil {
		return pe("mkdir", p, err)
	}
	if clean == "/" {
		return nil
	}
	comps := components(clean)
	for i := 1; i <= len(comps); i++ {
		prefix := "/" + vfs.Join(comps[:i]...)
		fs.mu.Lock()
		t, err := fs.walk(prefix, true)
		fs.mu.Unlock()
		switch {
		case err == nil && t.fs != nil:
			return t.fs.MkdirAll(vfs.Join(t.rest, vfs.Join(comps[i:]...)))
		case err == nil && t.n().isDir():
			continue
		case err == nil:
			return pe("mkdir", prefix, vfs.ErrNotDir)
		default:
			if mkErr := fs.Mkdir(prefix); mkErr != nil {
				return mkErr
			}
		}
	}
	return nil
}

// Create creates or truncates a file and opens it for reading and
// writing.
func (fs *FS) Create(p string) (vfs.File, error) {
	return fs.OpenFile(p, vfs.ORead|vfs.OWrite|vfs.OCreate|vfs.OTrunc)
}

// Open opens a file for reading.
func (fs *FS) Open(p string) (vfs.File, error) {
	return fs.OpenFile(p, vfs.ORead)
}

// OpenFile opens p with the given flags.
func (fs *FS) OpenFile(p string, flag int) (vfs.File, error) {
	fs.stats.Opens.Add(1)
	if flag&(vfs.ORead|vfs.OWrite) == 0 {
		return nil, pe("open", p, vfs.ErrInvalid)
	}
	fs.mu.Lock()
	t, err := fs.walk(p, true)
	if err == nil && t.fs != nil {
		fs.mu.Unlock()
		return t.fs.OpenFile(t.rest, flag)
	}
	if err != nil {
		if err != vfs.ErrNotExist || flag&vfs.OCreate == 0 {
			fs.mu.Unlock()
			return nil, pe("open", p, err)
		}
		pt, base, perr := fs.walkParent(p)
		if perr != nil {
			fs.mu.Unlock()
			return nil, pe("open", p, perr)
		}
		if pt.fs != nil {
			fs.mu.Unlock()
			return pt.fs.OpenFile(pt.rest, flag)
		}
		if _, exists := pt.n().children[base]; exists {
			// The final component is a dangling symlink; refuse.
			fs.mu.Unlock()
			return nil, pe("open", p, vfs.ErrExist)
		}
		dir := fs.cow(pt.trail)
		n := &inode{
			id:      fs.allocID(),
			gen:     fs.gen,
			typ:     vfs.TypeFile,
			name:    base,
			modTime: fs.now(),
		}
		dir.children[base] = n
		dir.modTime = fs.now()
		fs.mu.Unlock()
		return fs.newHandle(n, p, flag), nil
	}
	n := t.n()
	if n.isDir() {
		fs.mu.Unlock()
		return nil, pe("open", p, vfs.ErrIsDir)
	}
	if flag&vfs.OExcl != 0 && flag&vfs.OCreate != 0 {
		fs.mu.Unlock()
		return nil, pe("open", p, vfs.ErrExist)
	}
	if flag&vfs.OTrunc != 0 {
		if flag&vfs.OWrite == 0 {
			fs.mu.Unlock()
			return nil, pe("open", p, vfs.ErrInvalid)
		}
		n = fs.cow(t.trail)
		fs.dropContent(n)
		n.size = 0
		n.modTime = fs.now()
	}
	fs.mu.Unlock()
	return fs.newHandle(n, p, flag), nil
}

// ReadFile returns the contents of the file at p.
func (fs *FS) ReadFile(p string) ([]byte, error) {
	fs.stats.Reads.Add(1)
	fs.mu.RLock()
	t, err := fs.walk(p, true)
	if err != nil {
		fs.mu.RUnlock()
		return nil, pe("read", p, err)
	}
	if t.fs != nil {
		fs.mu.RUnlock()
		return t.fs.ReadFile(t.rest)
	}
	defer fs.mu.RUnlock()
	if t.n().isDir() {
		return nil, pe("read", p, vfs.ErrIsDir)
	}
	data := fs.content(t.n())
	out := make([]byte, len(data))
	copy(out, data)
	return out, nil
}

// WriteFile creates or replaces the file at p with data, sealing the
// content into the blob store immediately (one Put; a dedup hit costs
// no storage).
func (fs *FS) WriteFile(p string, data []byte) error {
	fs.stats.Writes.Add(1)
	fs.mu.Lock()
	t, err := fs.walk(p, true)
	if err == nil && t.fs != nil {
		fs.mu.Unlock()
		return t.fs.WriteFile(t.rest, data)
	}
	if err == nil {
		n := t.n()
		if n.isDir() {
			fs.mu.Unlock()
			return pe("write", p, vfs.ErrIsDir)
		}
		n = fs.cow(t.trail)
		fs.setContent(n, data)
		fs.mu.Unlock()
		return nil
	}
	if err != vfs.ErrNotExist {
		fs.mu.Unlock()
		return pe("open", p, err)
	}
	pt, base, perr := fs.walkParent(p)
	if perr != nil {
		fs.mu.Unlock()
		return pe("open", p, perr)
	}
	if pt.fs != nil {
		fs.mu.Unlock()
		return pt.fs.WriteFile(pt.rest, data)
	}
	if _, exists := pt.n().children[base]; exists {
		fs.mu.Unlock()
		return pe("open", p, vfs.ErrExist)
	}
	dir := fs.cow(pt.trail)
	n := &inode{
		id:      fs.allocID(),
		gen:     fs.gen,
		typ:     vfs.TypeFile,
		name:    base,
		modTime: fs.now(),
	}
	dir.children[base] = n
	dir.modTime = fs.now()
	fs.setContent(n, data)
	fs.mu.Unlock()
	return nil
}

// Symlink creates a symbolic link at link pointing to target. The
// target is stored verbatim and resolved lazily, so dangling links are
// legal.
func (fs *FS) Symlink(target, link string) error {
	fs.stats.Symlinks.Add(1)
	if target == "" {
		return pe("symlink", link, vfs.ErrInvalid)
	}
	fs.mu.Lock()
	t, base, err := fs.walkParent(link)
	if err != nil {
		fs.mu.Unlock()
		return pe("symlink", link, err)
	}
	if t.fs != nil {
		fs.mu.Unlock()
		return t.fs.Symlink(target, t.rest)
	}
	defer fs.mu.Unlock()
	if _, ok := t.n().children[base]; ok {
		return pe("symlink", link, vfs.ErrExist)
	}
	dir := fs.cow(t.trail)
	dir.children[base] = &inode{
		id:      fs.allocID(),
		gen:     fs.gen,
		typ:     vfs.TypeSymlink,
		name:    base,
		target:  target,
		modTime: fs.now(),
	}
	dir.modTime = fs.now()
	return nil
}

// Readlink returns the target of the symlink at p.
func (fs *FS) Readlink(p string) (string, error) {
	fs.mu.RLock()
	t, err := fs.walk(p, false)
	if err != nil {
		fs.mu.RUnlock()
		return "", pe("readlink", p, err)
	}
	if t.fs != nil {
		fs.mu.RUnlock()
		return t.fs.Readlink(t.rest)
	}
	defer fs.mu.RUnlock()
	if t.n().typ != vfs.TypeSymlink {
		return "", pe("readlink", p, vfs.ErrInvalid)
	}
	return t.n().target, nil
}

// Remove deletes the object at p. Directories must be empty. Symlinks
// are removed, not followed. Mount points cannot be removed.
func (fs *FS) Remove(p string) error {
	fs.stats.Removes.Add(1)
	fs.mu.Lock()
	t, base, err := fs.walkParent(p)
	if err != nil {
		fs.mu.Unlock()
		return pe("remove", p, err)
	}
	if t.fs != nil {
		fs.mu.Unlock()
		return t.fs.Remove(t.rest)
	}
	defer fs.mu.Unlock()
	n, ok := t.n().children[base]
	if !ok {
		return pe("remove", p, vfs.ErrNotExist)
	}
	if _, mounted := fs.mounts[n.id]; mounted {
		return pe("remove", p, vfs.ErrBusy)
	}
	if n.isDir() && len(n.children) > 0 {
		return pe("remove", p, vfs.ErrNotEmpty)
	}
	dir := fs.cow(t.trail)
	fs.releaseOverlay(n)
	delete(dir.children, base)
	dir.modTime = fs.now()
	return nil
}

// RemoveAll deletes the object at p and, for directories, everything
// beneath it. Removing a non-existent path is not an error. Subtrees
// containing mount points are refused.
func (fs *FS) RemoveAll(p string) error {
	fs.stats.Removes.Add(1)
	clean, err := vfs.Clean(p)
	if err != nil {
		return pe("removeall", p, err)
	}
	if clean == "/" {
		return pe("removeall", p, vfs.ErrInvalid)
	}
	fs.mu.Lock()
	t, base, err := fs.walkParent(clean)
	if err != nil {
		fs.mu.Unlock()
		if err == vfs.ErrNotExist {
			return nil
		}
		return pe("removeall", p, err)
	}
	if t.fs != nil {
		fs.mu.Unlock()
		return t.fs.RemoveAll(t.rest)
	}
	defer fs.mu.Unlock()
	n, ok := t.n().children[base]
	if !ok {
		return nil
	}
	if fs.subtreeHasMount(n) {
		return pe("removeall", p, vfs.ErrBusy)
	}
	dir := fs.cow(t.trail)
	fs.releaseOverlay(n)
	delete(dir.children, base)
	dir.modTime = fs.now()
	return nil
}

func (fs *FS) subtreeHasMount(n *inode) bool {
	if _, ok := fs.mounts[n.id]; ok {
		return true
	}
	for _, c := range n.children {
		if c.isDir() && fs.subtreeHasMount(c) {
			return true
		}
	}
	return false
}

// Rename moves the object at oldPath to newPath, following POSIX rules:
// an existing empty directory or file at newPath is replaced; a
// directory cannot be moved into its own subtree; renames may not cross
// mount points.
func (fs *FS) Rename(oldPath, newPath string) error {
	fs.stats.Renames.Add(1)
	fs.mu.Lock()
	defer fs.mu.Unlock()

	ot, oldBase, err := fs.walkParent(oldPath)
	if err != nil {
		return pe("rename", oldPath, err)
	}
	nt, newBase, err := fs.walkParent(newPath)
	if err != nil {
		return pe("rename", newPath, err)
	}
	if ot.fs != nil || nt.fs != nil {
		if ot.fs != nil && ot.fs == nt.fs {
			m := ot.fs
			fs.mu.Unlock()
			err := m.Rename(ot.rest, nt.rest)
			fs.mu.Lock()
			return err
		}
		return pe("rename", oldPath, vfs.ErrCrossMount)
	}
	src, ok := ot.n().children[oldBase]
	if !ok {
		return pe("rename", oldPath, vfs.ErrNotExist)
	}
	if _, mounted := fs.mounts[src.id]; mounted {
		return pe("rename", oldPath, vfs.ErrBusy)
	}
	// Refuse to move a directory under itself: the destination parent
	// trail must not pass through src.
	if src.isDir() {
		for _, d := range nt.trail {
			if d.id == src.id {
				return pe("rename", newPath, vfs.ErrInvalid)
			}
		}
	}
	if dst, exists := nt.n().children[newBase]; exists {
		if dst == src || dst.id == src.id {
			return nil // rename to itself
		}
		switch {
		case dst.isDir() && !src.isDir():
			return pe("rename", newPath, vfs.ErrIsDir)
		case !dst.isDir() && src.isDir():
			return pe("rename", newPath, vfs.ErrNotDir)
		case dst.isDir() && len(dst.children) > 0:
			return pe("rename", newPath, vfs.ErrNotEmpty)
		}
		if _, mounted := fs.mounts[dst.id]; mounted {
			return pe("rename", newPath, vfs.ErrBusy)
		}
	}
	oldDir := fs.cow(ot.trail)
	// Re-walking may be needed: cow of the old trail can have replaced
	// nodes on the new trail (shared ancestors). Re-resolve the new
	// parent against the updated overlay before linking.
	nt2, newBase2, err := fs.walkParent(newPath)
	if err != nil || nt2.fs != nil {
		return pe("rename", newPath, vfs.ErrInvalid)
	}
	newDir := fs.cow(nt2.trail)
	if dst, exists := newDir.children[newBase2]; exists {
		if fs.subtreeHasMount(dst) {
			return pe("rename", newPath, vfs.ErrBusy)
		}
		fs.releaseOverlay(dst)
	}
	// The moved node itself must become overlay so its name can change
	// without disturbing sealed bases.
	moved := src
	if moved.gen != fs.gen {
		moved = fs.copyNode(src)
	}
	delete(oldDir.children, oldBase)
	oldDir.modTime = fs.now()
	moved.name = newBase2
	moved.modTime = fs.now()
	newDir.children[newBase2] = moved
	return nil
}

// Stat returns metadata for p, following symlinks.
func (fs *FS) Stat(p string) (vfs.Info, error) {
	fs.stats.Stats.Add(1)
	fs.mu.RLock()
	t, err := fs.walk(p, true)
	if err != nil {
		fs.mu.RUnlock()
		return vfs.Info{}, pe("stat", p, err)
	}
	if t.fs != nil {
		fs.mu.RUnlock()
		return t.fs.Stat(t.rest)
	}
	defer fs.mu.RUnlock()
	return t.n().info(), nil
}

// Lstat returns metadata for p without following a final symlink.
func (fs *FS) Lstat(p string) (vfs.Info, error) {
	fs.stats.Stats.Add(1)
	fs.mu.RLock()
	t, err := fs.walk(p, false)
	if err != nil {
		fs.mu.RUnlock()
		return vfs.Info{}, pe("lstat", p, err)
	}
	if t.fs != nil {
		fs.mu.RUnlock()
		return t.fs.Lstat(t.rest)
	}
	defer fs.mu.RUnlock()
	return t.n().info(), nil
}

// ReadDir lists the directory at p in name order.
func (fs *FS) ReadDir(p string) ([]vfs.DirEntry, error) {
	fs.stats.ReadDirs.Add(1)
	fs.mu.RLock()
	t, err := fs.walk(p, true)
	if err != nil {
		fs.mu.RUnlock()
		return nil, pe("readdir", p, err)
	}
	if t.fs != nil {
		fs.mu.RUnlock()
		return t.fs.ReadDir(t.rest)
	}
	defer fs.mu.RUnlock()
	if !t.n().isDir() {
		return nil, pe("readdir", p, vfs.ErrNotDir)
	}
	n := t.n()
	out := make([]vfs.DirEntry, 0, len(n.children))
	for _, c := range n.children {
		out = append(out, vfs.DirEntry{Name: c.name, Type: c.typ, Ino: c.id})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// ---------------------------------------------------------------------
// Mounts (MemFS-compatible syntactic mount points)
// ---------------------------------------------------------------------

// Mount attaches m at the directory p; subsequent lookups under p are
// served by m.
func (fs *FS) Mount(p string, m vfs.FileSystem) error {
	if m == nil || m == vfs.FileSystem(fs) {
		return pe("mount", p, vfs.ErrInvalid)
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	n, err := fs.lookupNoMount(p)
	if err != nil {
		return pe("mount", p, err)
	}
	if !n.isDir() {
		return pe("mount", p, vfs.ErrNotDir)
	}
	if _, ok := fs.mounts[n.id]; ok {
		return pe("mount", p, vfs.ErrBusy)
	}
	fs.mounts[n.id] = m
	return nil
}

// lookupNoMount resolves p strictly within this file system; see
// MemFS.lookupNoMount. Caller holds fs.mu.
func (fs *FS) lookupNoMount(p string) (*inode, error) {
	clean, err := vfs.Clean(p)
	if err != nil {
		return nil, err
	}
	cur := fs.root
	for _, c := range components(clean) {
		if _, ok := fs.mounts[cur.id]; ok {
			return nil, vfs.ErrCrossMount
		}
		if !cur.isDir() {
			return nil, vfs.ErrNotDir
		}
		next, ok := cur.children[c]
		if !ok {
			return nil, vfs.ErrNotExist
		}
		cur = next
	}
	return cur, nil
}

// Unmount detaches the file system mounted at p.
func (fs *FS) Unmount(p string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	n, err := fs.lookupNoMount(p)
	if err != nil {
		return pe("unmount", p, err)
	}
	if _, ok := fs.mounts[n.id]; !ok {
		return pe("unmount", p, vfs.ErrInvalid)
	}
	delete(fs.mounts, n.id)
	return nil
}

// ---------------------------------------------------------------------
// Sealing: snapshots, clones, manifests
// ---------------------------------------------------------------------

// Snap is a sealed, immutable image of an FS at one instant: the root
// of a frozen tree sharing the blob store. Taking one is O(1).
type Snap struct {
	root  *inode
	store *BlobStore
	taken time.Time
}

// Taken returns when the snapshot was sealed.
func (s *Snap) Taken() time.Time { return s.taken }

// seal flushes dirty buffers and retires the current overlay: every
// node becomes frozen because the FS moves to a fresh generation.
// Caller holds fs.mu for writing. Returns the sealed root.
func (fs *FS) seal() *inode {
	fs.flushAll()
	fs.gen = genCounter.Add(1)
	return fs.root
}

// Snapshot seals the current overlay into a new immutable base and
// returns it. Cost is O(dirty open handles), not O(tree): the tree is
// shared, not walked. Subsequent mutations copy their path from the
// root down.
func (fs *FS) Snapshot() *Snap {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	root := fs.seal()
	return &Snap{root: root, store: fs.store, taken: fs.now()}
}

// Clone seals the overlay and returns an independent FS sharing the
// sealed tree and the blob store. Like Snapshot, cost is O(1) in tree
// size; the two file systems then diverge copy-on-write.
func (fs *FS) Clone() *FS {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	root := fs.seal()
	return &FS{
		store:      fs.store,
		root:       root,
		gen:        genCounter.Add(1),
		nextID:     fs.nextID,
		now:        fs.now,
		mounts:     make(map[uint64]vfs.FileSystem),
		dirtyFiles: make(map[*inode]bool),
	}
}

// Restore rewinds the file system to a previously taken snapshot.
// Owned overlay content is released; the snapshot tree is shared, so
// this too is O(overlay), not O(tree).
func (fs *FS) Restore(s *Snap) error {
	if s == nil || s.store != fs.store {
		return pe("restore", "/", vfs.ErrInvalid)
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.releaseOverlay(fs.root)
	for n := range fs.dirtyFiles {
		delete(fs.dirtyFiles, n)
	}
	fs.root = s.root
	fs.gen = genCounter.Add(1)
	return nil
}

// Manifest materializes the tree description: every node, sorted by
// path, with file content referenced by hash. Dirty buffers are sealed
// first, so the manifest's hashes are always resolvable in the store.
// Mounted subtrees are not descended into (the mount point appears as
// an ordinary directory), matching MemFS.Snapshot.
func (fs *FS) Manifest() *Manifest {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.flushAll()
	return fs.manifestLocked()
}

// CASManifest and CASBlobs expose the manifest-diff replication surface
// (remotefs.BlobSource) on a bare content-addressed file system, so one
// can be served and mirrored without a HAC layer on top. CASBlobs
// returns contents for the requested hashes in order; a hash absent
// from the store fails the whole batch with vfs.ErrNotExist.

func (fs *FS) CASManifest() (*Manifest, error) { return fs.Manifest(), nil }

func (fs *FS) CASBlobs(hashes []Hash) ([][]byte, error) {
	out := make([][]byte, 0, len(hashes))
	for _, h := range hashes {
		data, ok := fs.store.Get(h)
		if !ok {
			return nil, &vfs.PathError{Op: "blobs", Path: h.String(), Err: vfs.ErrNotExist}
		}
		out = append(out, data)
	}
	return out, nil
}

// ImageData returns one atomic view of the volume for image writers:
// the manifest plus the content of every distinct blob it references.
// Returning the data slices (not the store) keeps them valid even if a
// concurrent writer later drops the last reference — the garbage
// collector retains the buffers for the caller.
func (fs *FS) ImageData() (*Manifest, map[Hash][]byte) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.flushAll()
	m := fs.manifestLocked()
	blobs := make(map[Hash][]byte)
	for _, e := range m.Entries {
		if e.Type != vfs.TypeFile {
			continue
		}
		if _, ok := blobs[e.Hash]; ok {
			continue
		}
		if data, ok := fs.store.Get(e.Hash); ok {
			blobs[e.Hash] = data
		}
	}
	return m, blobs
}

// manifestLocked materializes the tree description; caller holds fs.mu
// for writing with dirty buffers already flushed.
func (fs *FS) manifestLocked() *Manifest {
	m := &Manifest{Entries: make([]Entry, 0, 64)}
	var visit func(n *inode, path string)
	visit = func(n *inode, path string) {
		e := Entry{Path: path, Type: n.typ, ModTime: n.modTime}
		switch n.typ {
		case vfs.TypeFile:
			e.Hash, e.Size = n.hash, n.size
		case vfs.TypeSymlink:
			e.Target = n.target
		}
		m.Entries = append(m.Entries, e)
		if !n.isDir() {
			return
		}
		if _, mounted := fs.mounts[n.id]; mounted {
			return
		}
		names := make([]string, 0, len(n.children))
		for name := range n.children {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			child := n.children[name]
			cp := path + "/" + name
			if path == "/" {
				cp = "/" + name
			}
			visit(child, cp)
		}
	}
	visit(fs.root, "/")
	return m
}

// FromManifest materializes a file system from a manifest whose blobs
// are all present in store. The new FS's overlay owns one store
// reference per file. Missing blobs are an error naming the first
// absent hash.
func FromManifest(m *Manifest, store *BlobStore) (*FS, error) {
	if store == nil {
		store = NewStore()
	}
	fs := New(store)
	if len(m.Entries) == 0 || m.Entries[0].Path != "/" || m.Entries[0].Type != vfs.TypeDir {
		return nil, pe("manifest", "/", vfs.ErrInvalid)
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	// On failure, release the references already taken — the half-built
	// tree is discarded, and a shared store must not keep its blobs
	// pinned by a manifest that never materialized.
	var taken []Hash
	fail := func(path string, err error) (*FS, error) {
		for _, h := range taken {
			store.Unref(h)
		}
		return nil, pe("manifest", path, err)
	}
	fs.root.modTime = m.Entries[0].ModTime
	for _, e := range m.Entries[1:] {
		t, base, err := fs.walkParentNoFollow(e.Path)
		if err != nil {
			return fail(e.Path, err)
		}
		dir := t.n()
		if !dir.isDir() {
			return fail(e.Path, vfs.ErrNotDir)
		}
		if _, dup := dir.children[base]; dup {
			return fail(e.Path, vfs.ErrExist)
		}
		n := &inode{
			id:      fs.allocID(),
			gen:     fs.gen,
			typ:     e.Type,
			name:    base,
			modTime: e.ModTime,
		}
		switch e.Type {
		case vfs.TypeDir:
			n.children = make(map[string]*inode)
		case vfs.TypeSymlink:
			if e.Target == "" {
				return fail(e.Path, vfs.ErrInvalid)
			}
			n.target = e.Target
		case vfs.TypeFile:
			if !store.Ref(e.Hash) {
				return fail(e.Path, vfs.ErrNotExist)
			}
			taken = append(taken, e.Hash)
			n.hash, n.hasHash, n.owned = e.Hash, true, true
			n.size = store.Size(e.Hash)
		default:
			return fail(e.Path, vfs.ErrInvalid)
		}
		dir.children[base] = n
	}
	return fs, nil
}

// walkParentNoFollow resolves the literal parent directory of p without
// following symlinks anywhere on the trail — manifest replay must not
// reinterpret paths. Caller holds fs.mu.
func (fs *FS) walkParentNoFollow(p string) (walkTarget, string, error) {
	clean, err := vfs.Clean(p)
	if err != nil {
		return walkTarget{}, "", err
	}
	if clean == "/" {
		return walkTarget{}, "", vfs.ErrInvalid
	}
	dirPath, base := vfs.Split(clean)
	trail := []*inode{fs.root}
	for _, c := range components(dirPath) {
		cur := trail[len(trail)-1]
		if !cur.isDir() {
			return walkTarget{}, "", vfs.ErrNotDir
		}
		child, ok := cur.children[c]
		if !ok {
			return walkTarget{}, "", vfs.ErrNotExist
		}
		trail = append(trail, child)
	}
	return walkTarget{trail: trail}, base, nil
}

// Release drops every store reference the live overlay owns and resets
// the tree to an empty root. A volume loader that materialized a tree
// and then failed a later stage calls this so a shared store is left
// exactly as the load found it. References held by sealed snapshots are
// unaffected.
func (fs *FS) Release() {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.releaseOverlay(fs.root)
	for n := range fs.dirtyFiles {
		delete(fs.dirtyFiles, n)
	}
	fs.root = &inode{
		id:       fs.root.id,
		gen:      fs.gen,
		typ:      vfs.TypeDir,
		name:     "/",
		modTime:  fs.now(),
		children: make(map[string]*inode),
	}
}

// ReplaceWithManifest atomically replaces the entire tree with the one
// the manifest describes (all blobs must already be in the store) —
// the receiving half of manifest-diff sync. The previous overlay's
// owned references are released; the new overlay owns one reference per
// file.
func (fs *FS) ReplaceWithManifest(m *Manifest) error {
	fresh, err := FromManifest(m, fs.store)
	if err != nil {
		return err
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.releaseOverlay(fs.root)
	for n := range fs.dirtyFiles {
		delete(fs.dirtyFiles, n)
	}
	fs.root = fresh.root
	fs.gen = fresh.gen
	fs.nextID = fresh.nextID
	return nil
}
