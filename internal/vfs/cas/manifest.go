package cas

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"time"

	"hacfs/internal/vfs"
)

// Entry describes one node of a volume tree: its path, kind, and — for
// files — the content hash and size. A manifest plus the blobs its
// hashes name is a complete, self-contained description of the tree.
type Entry struct {
	Path    string
	Type    vfs.NodeType
	Hash    Hash   // files only
	Size    int64  // files only
	Target  string // symlinks only
	ModTime time.Time
}

// Manifest is an ordered tree description: entries sorted by path,
// which places every parent before its children (a parent is a strict
// prefix of its descendants). The first entry is always the root
// directory "/".
type Manifest struct {
	Entries []Entry
}

// Sort orders entries by path; builders that append out of order call
// it before encoding.
func (m *Manifest) Sort() {
	sort.Slice(m.Entries, func(i, j int) bool { return m.Entries[i].Path < m.Entries[j].Path })
}

// Lookup returns the entry at path, if any.
func (m *Manifest) Lookup(path string) (Entry, bool) {
	i := sort.Search(len(m.Entries), func(i int) bool { return m.Entries[i].Path >= path })
	if i < len(m.Entries) && m.Entries[i].Path == path {
		return m.Entries[i], true
	}
	return Entry{}, false
}

// Hashes returns the distinct content hashes referenced by file
// entries, in first-appearance order.
func (m *Manifest) Hashes() []Hash {
	seen := make(map[Hash]bool)
	var out []Hash
	for _, e := range m.Entries {
		if e.Type != vfs.TypeFile || seen[e.Hash] {
			continue
		}
		seen[e.Hash] = true
		out = append(out, e.Hash)
	}
	return out
}

// LogicalBytes returns the sum of file sizes described by the manifest.
func (m *Manifest) LogicalBytes() int64 {
	var n int64
	for _, e := range m.Entries {
		if e.Type == vfs.TypeFile {
			n += e.Size
		}
	}
	return n
}

// MissingFrom returns the distinct hashes named by the manifest that
// store does not hold — the blobs a receiver must fetch before it can
// materialize the tree.
func (m *Manifest) MissingFrom(store *BlobStore) []Hash {
	var out []Hash
	seen := make(map[Hash]bool)
	for _, e := range m.Entries {
		if e.Type != vfs.TypeFile || seen[e.Hash] {
			continue
		}
		seen[e.Hash] = true
		if !store.Has(e.Hash) {
			out = append(out, e.Hash)
		}
	}
	return out
}

// Manifest codec: a compact, bounded binary form used inside v4 volume
// images and on the remotefs wire.
//
//	magic "HACM" | u8 version | u32 count
//	per entry:
//	  u16 pathLen | path | u8 type
//	  type=file:    hash[32] | u64 size | i64 modTimeUnixNano
//	  type=dir:     i64 modTimeUnixNano
//	  type=symlink: u16 targetLen | target | i64 modTimeUnixNano
//
// The decoder validates every length against the remaining input before
// allocating, rejects unknown versions/types, and requires strictly
// increasing paths starting at "/" — so it can never panic or
// over-allocate on adversarial input (FuzzManifestCodec).
const (
	manifestVersion  = 1
	maxManifestEntry = 1 << 22 // 4M entries ~ absurdly large volume
	maxPathLen       = 64 << 10
)

var manifestMagic = [4]byte{'H', 'A', 'C', 'M'}

// ErrBadManifest rejects a malformed manifest encoding.
var ErrBadManifest = errors.New("cas: malformed manifest")

// AppendBinary appends the encoded manifest to buf and returns the
// extended slice.
func (m *Manifest) AppendBinary(buf []byte) []byte {
	buf = append(buf, manifestMagic[:]...)
	buf = append(buf, manifestVersion)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(m.Entries)))
	for _, e := range m.Entries {
		buf = binary.BigEndian.AppendUint16(buf, uint16(len(e.Path)))
		buf = append(buf, e.Path...)
		buf = append(buf, byte(e.Type))
		switch e.Type {
		case vfs.TypeFile:
			buf = append(buf, e.Hash[:]...)
			buf = binary.BigEndian.AppendUint64(buf, uint64(e.Size))
		case vfs.TypeSymlink:
			buf = binary.BigEndian.AppendUint16(buf, uint16(len(e.Target)))
			buf = append(buf, e.Target...)
		}
		buf = binary.BigEndian.AppendUint64(buf, uint64(e.ModTime.UnixNano()))
	}
	return buf
}

// EncodeBinary returns the encoded manifest.
func (m *Manifest) EncodeBinary() []byte {
	// Rough size estimate avoids regrowth: header + per-entry overhead.
	n := 9
	for _, e := range m.Entries {
		n += 2 + len(e.Path) + 1 + 32 + 8 + 8 + 2 + len(e.Target)
	}
	return m.AppendBinary(make([]byte, 0, n))
}

// DecodeManifest parses an encoded manifest. Entries come back sorted;
// any framing violation returns ErrBadManifest.
func DecodeManifest(data []byte) (*Manifest, error) {
	bad := func(what string) error { return fmt.Errorf("%w: %s", ErrBadManifest, what) }
	if len(data) < 9 {
		return nil, bad("short header")
	}
	if [4]byte(data[:4]) != manifestMagic {
		return nil, bad("bad magic")
	}
	if data[4] != manifestVersion {
		return nil, bad("unknown version")
	}
	count := binary.BigEndian.Uint32(data[5:9])
	if count > maxManifestEntry {
		return nil, bad("entry count out of range")
	}
	rest := data[9:]
	// Every entry costs at least 12 bytes (1-byte path, dir case), so
	// the count can be sanity-bounded by the input length before the
	// allocation below.
	if int64(count)*12 > int64(len(rest)) {
		return nil, bad("entry count exceeds input")
	}
	m := &Manifest{Entries: make([]Entry, 0, count)}
	take := func(n int) ([]byte, bool) {
		if n < 0 || len(rest) < n {
			return nil, false
		}
		b := rest[:n]
		rest = rest[n:]
		return b, true
	}
	prev := ""
	for i := uint32(0); i < count; i++ {
		b, ok := take(2)
		if !ok {
			return nil, bad("truncated path length")
		}
		plen := int(binary.BigEndian.Uint16(b))
		if plen == 0 || plen > maxPathLen {
			return nil, bad("path length out of range")
		}
		pb, ok := take(plen)
		if !ok {
			return nil, bad("truncated path")
		}
		path := string(pb)
		if i == 0 {
			if path != "/" {
				return nil, bad("first entry is not the root")
			}
		} else if path <= prev {
			return nil, bad("paths not strictly increasing")
		}
		if path[0] != '/' {
			return nil, bad("relative path")
		}
		prev = path
		tb, ok := take(1)
		if !ok {
			return nil, bad("truncated type")
		}
		e := Entry{Path: path, Type: vfs.NodeType(tb[0])}
		switch e.Type {
		case vfs.TypeFile:
			hb, ok := take(len(Hash{}))
			if !ok {
				return nil, bad("truncated hash")
			}
			copy(e.Hash[:], hb)
			sb, ok := take(8)
			if !ok {
				return nil, bad("truncated size")
			}
			e.Size = int64(binary.BigEndian.Uint64(sb))
			if e.Size < 0 {
				return nil, bad("negative size")
			}
		case vfs.TypeDir:
		case vfs.TypeSymlink:
			b, ok := take(2)
			if !ok {
				return nil, bad("truncated target length")
			}
			tlen := int(binary.BigEndian.Uint16(b))
			if tlen == 0 || tlen > maxPathLen {
				return nil, bad("target length out of range")
			}
			tgt, ok := take(tlen)
			if !ok {
				return nil, bad("truncated target")
			}
			e.Target = string(tgt)
		default:
			return nil, bad("unknown node type")
		}
		mb, ok := take(8)
		if !ok {
			return nil, bad("truncated modtime")
		}
		e.ModTime = time.Unix(0, int64(binary.BigEndian.Uint64(mb)))
		m.Entries = append(m.Entries, e)
	}
	if len(rest) != 0 {
		return nil, bad("trailing bytes")
	}
	return m, nil
}
