package cas

import (
	"errors"
	"fmt"
	"sync"
	"testing"
)

func TestStorePutDedupAndRefs(t *testing.T) {
	s := NewStore()
	h1, added := s.Put([]byte("hello"))
	if added != 5 {
		t.Fatalf("first put added %d, want 5", added)
	}
	h2, added := s.Put([]byte("hello"))
	if h1 != h2 || added != 0 {
		t.Fatalf("dup put: hash eq=%v added=%d", h1 == h2, added)
	}
	if got := s.UniqueBytes(); got != 5 {
		t.Fatalf("unique = %d", got)
	}
	if got := s.LogicalBytes(); got != 10 {
		t.Fatalf("logical = %d", got)
	}
	if !s.Ref(h1) {
		t.Fatal("ref on live blob failed")
	}
	// Three refs: two Puts + one Ref. Two Unrefs keep it live.
	if freed := s.Unref(h1); freed != 0 {
		t.Fatalf("unref 1 freed %d", freed)
	}
	if freed := s.Unref(h1); freed != 0 {
		t.Fatalf("unref 2 freed %d", freed)
	}
	if freed := s.Unref(h1); freed != 5 {
		t.Fatalf("final unref freed %d, want 5", freed)
	}
	if s.Has(h1) || s.Blobs() != 0 || s.UniqueBytes() != 0 || s.LogicalBytes() != 0 {
		t.Fatalf("store not empty after final unref: blobs=%d unique=%d logical=%d",
			s.Blobs(), s.UniqueBytes(), s.LogicalBytes())
	}
	if s.Ref(h1) {
		t.Fatal("ref on dead blob succeeded")
	}
	if s.Size(h1) != -1 {
		t.Fatal("size of dead blob")
	}
}

func TestStoreGetImmutable(t *testing.T) {
	s := NewStore()
	buf := []byte("mutate me")
	h, _ := s.Put(buf)
	buf[0] = 'X' // caller reuses its buffer; the store must be unaffected
	got, ok := s.Get(h)
	if !ok || string(got) != "mutate me" {
		t.Fatalf("store content changed: %q", got)
	}
}

func TestMeasuredDelta(t *testing.T) {
	s := NewStore()
	delta, err := s.Measured(func() error {
		s.Put([]byte("aaaa"))
		s.Put([]byte("aaaa")) // dedup: no new unique bytes
		s.Put([]byte("bb"))
		return nil
	})
	if err != nil || delta != 6 {
		t.Fatalf("delta = %d err=%v, want 6", delta, err)
	}
	wantErr := errors.New("boom")
	delta, err = s.Measured(func() error { return wantErr })
	if err != wantErr || delta != 0 {
		t.Fatalf("error passthrough: delta=%d err=%v", delta, err)
	}
	// Concurrent measured writers must never see each other's bytes.
	var wg sync.WaitGroup
	deltas := make([]int64, 8)
	for i := 0; i < 8; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			d, _ := s.Measured(func() error {
				s.Put([]byte(fmt.Sprintf("writer-%d-payload", i)))
				return nil
			})
			deltas[i] = d
		}()
	}
	wg.Wait()
	for i, d := range deltas {
		if want := int64(len(fmt.Sprintf("writer-%d-payload", i))); d != want {
			t.Fatalf("writer %d delta = %d, want %d", i, d, want)
		}
	}
}
