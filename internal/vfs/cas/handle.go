package cas

import (
	"io"

	"hacfs/internal/vfs"
)

// chandle is an open file on a cas.FS node. Reads see the node's
// current content (sealed or buffered); the first write through a
// handle converts the node's content to a mutable buffer that is
// sealed back into the store on Close or at the next manifest
// materialization.
type chandle struct {
	fs       *FS
	n        *inode
	name     string
	flag     int
	off      int64
	closed   bool
	detached bool // node no longer reachable at name; writes are private
}

func (fs *FS) newHandle(n *inode, name string, flag int) *chandle {
	return &chandle{fs: fs, n: n, name: name, flag: flag}
}

var _ vfs.File = (*chandle)(nil)

func (h *chandle) Name() string { return h.name }

func (h *chandle) checkOpen() error {
	if h.closed {
		return pe("file", h.name, vfs.ErrClosed)
	}
	return nil
}

// ensureMutable makes the handle's node writable under the current
// overlay. A node sealed since the handle opened is re-resolved by
// path and copied-on-write; if the path no longer leads to it (renamed
// or removed after a seal) the handle degrades to a private copy, like
// writing an unlinked file. Caller holds fs.mu for writing.
func (h *chandle) ensureMutable() *inode {
	fs := h.fs
	if h.detached || h.n.gen == fs.gen {
		return h.n
	}
	if t, err := fs.walk(h.name, true); err == nil && t.fs == nil && t.n().id == h.n.id {
		h.n = fs.cow(t.trail)
		return h.n
	}
	h.n = fs.copyNode(h.n)
	h.detached = true
	return h.n
}

// beginWrite prepares the node's dirty buffer. Caller holds fs.mu for
// writing.
func (h *chandle) beginWrite() *inode {
	n := h.ensureMutable()
	if !n.hasDirty {
		data := h.fs.content(n)
		buf := make([]byte, len(data))
		copy(buf, data)
		if n.owned && n.hasHash {
			h.fs.store.Unref(n.hash)
		}
		n.hash, n.hasHash, n.owned = Hash{}, false, false
		n.dirty, n.hasDirty = buf, true
		if !h.detached {
			h.fs.dirtyFiles[n] = true
		}
	}
	return n
}

// Read reads from the current offset.
func (h *chandle) Read(p []byte) (int, error) {
	if err := h.checkOpen(); err != nil {
		return 0, err
	}
	if h.flag&vfs.ORead == 0 {
		return 0, pe("read", h.name, vfs.ErrWriteOnly)
	}
	h.fs.mu.RLock()
	defer h.fs.mu.RUnlock()
	data := h.fs.content(h.n)
	if h.off >= int64(len(data)) {
		return 0, io.EOF
	}
	n := copy(p, data[h.off:])
	h.off += int64(n)
	return n, nil
}

// ReadAt reads len(p) bytes at offset off without moving the handle
// offset.
func (h *chandle) ReadAt(p []byte, off int64) (int, error) {
	if err := h.checkOpen(); err != nil {
		return 0, err
	}
	if h.flag&vfs.ORead == 0 {
		return 0, pe("read", h.name, vfs.ErrWriteOnly)
	}
	if off < 0 {
		return 0, pe("read", h.name, vfs.ErrInvalid)
	}
	h.fs.mu.RLock()
	defer h.fs.mu.RUnlock()
	data := h.fs.content(h.n)
	if off >= int64(len(data)) {
		return 0, io.EOF
	}
	n := copy(p, data[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

// Write writes at the current offset (or at the end with OAppend),
// extending the file as needed.
func (h *chandle) Write(p []byte) (int, error) {
	if err := h.checkOpen(); err != nil {
		return 0, err
	}
	if h.flag&vfs.OWrite == 0 {
		return 0, pe("write", h.name, vfs.ErrReadOnly)
	}
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	n := h.beginWrite()
	if h.flag&vfs.OAppend != 0 {
		h.off = int64(len(n.dirty))
	}
	h.writeAtLocked(n, p, h.off)
	h.off += int64(len(p))
	return len(p), nil
}

// WriteAt writes at offset off without moving the handle offset.
func (h *chandle) WriteAt(p []byte, off int64) (int, error) {
	if err := h.checkOpen(); err != nil {
		return 0, err
	}
	if h.flag&vfs.OWrite == 0 {
		return 0, pe("write", h.name, vfs.ErrReadOnly)
	}
	if off < 0 {
		return 0, pe("write", h.name, vfs.ErrInvalid)
	}
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	n := h.beginWrite()
	h.writeAtLocked(n, p, off)
	return len(p), nil
}

// writeAtLocked performs the copy into the dirty buffer; caller holds
// fs.mu.
func (h *chandle) writeAtLocked(n *inode, p []byte, off int64) {
	end := off + int64(len(p))
	if end > int64(len(n.dirty)) {
		grown := make([]byte, end)
		copy(grown, n.dirty)
		n.dirty = grown
	}
	copy(n.dirty[off:], p)
	n.modTime = h.fs.now()
}

// Seek implements io.Seeker.
func (h *chandle) Seek(offset int64, whence int) (int64, error) {
	if err := h.checkOpen(); err != nil {
		return 0, err
	}
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	var base int64
	switch whence {
	case io.SeekStart:
		base = 0
	case io.SeekCurrent:
		base = h.off
	case io.SeekEnd:
		base = int64(len(h.fs.content(h.n)))
	default:
		return 0, pe("seek", h.name, vfs.ErrInvalid)
	}
	next := base + offset
	if next < 0 {
		return 0, pe("seek", h.name, vfs.ErrInvalid)
	}
	h.off = next
	return next, nil
}

// Truncate resizes the file, zero-filling on growth.
func (h *chandle) Truncate(size int64) error {
	if err := h.checkOpen(); err != nil {
		return err
	}
	if h.flag&vfs.OWrite == 0 {
		return pe("truncate", h.name, vfs.ErrReadOnly)
	}
	if size < 0 {
		return pe("truncate", h.name, vfs.ErrInvalid)
	}
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	n := h.beginWrite()
	switch {
	case size <= int64(len(n.dirty)):
		n.dirty = n.dirty[:size]
	default:
		grown := make([]byte, size)
		copy(grown, n.dirty)
		n.dirty = grown
	}
	n.modTime = h.fs.now()
	return nil
}

// Stat returns current metadata for the open node.
func (h *chandle) Stat() (vfs.Info, error) {
	if err := h.checkOpen(); err != nil {
		return vfs.Info{}, err
	}
	h.fs.mu.RLock()
	defer h.fs.mu.RUnlock()
	return h.n.info(), nil
}

// Close seals any buffered writes back into the store and releases the
// handle. Double close returns ErrClosed.
func (h *chandle) Close() error {
	if h.closed {
		return pe("close", h.name, vfs.ErrClosed)
	}
	h.closed = true
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	// Only attached overlay buffers are sealed; a detached node's
	// content dies with the handle (the file was unlinked), and a node
	// frozen since the last write was already flushed by the seal.
	if !h.detached && h.n.gen == h.fs.gen && h.n.hasDirty {
		h.fs.flush(h.n)
	}
	return nil
}
