package cas

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"hacfs/internal/vfs"
)

func sampleManifest() *Manifest {
	ts := func(n int64) time.Time { return time.Unix(n, n*17) }
	return &Manifest{Entries: []Entry{
		{Path: "/", Type: vfs.TypeDir, ModTime: ts(1)},
		{Path: "/docs", Type: vfs.TypeDir, ModTime: ts(2)},
		{Path: "/docs/a.txt", Type: vfs.TypeFile, Hash: Sum([]byte("alpha")), Size: 5, ModTime: ts(3)},
		{Path: "/docs/ln", Type: vfs.TypeSymlink, Target: "/docs/a.txt", ModTime: ts(4)},
		{Path: "/empty", Type: vfs.TypeFile, Hash: Sum(nil), Size: 0, ModTime: ts(5)},
	}}
}

func TestManifestCodecRoundTrip(t *testing.T) {
	m := sampleManifest()
	enc := m.EncodeBinary()
	got, err := DecodeManifest(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Entries) != len(m.Entries) {
		t.Fatalf("entries = %d, want %d", len(got.Entries), len(m.Entries))
	}
	for i, e := range m.Entries {
		g := got.Entries[i]
		if g.Path != e.Path || g.Type != e.Type || g.Hash != e.Hash ||
			g.Size != e.Size || g.Target != e.Target || !g.ModTime.Equal(e.ModTime) {
			t.Fatalf("entry %d: got %+v, want %+v", i, g, e)
		}
	}
}

func TestManifestCodecRejectsDamage(t *testing.T) {
	enc := sampleManifest().EncodeBinary()
	// Truncations at every boundary.
	for n := 0; n < len(enc); n++ {
		if _, err := DecodeManifest(enc[:n]); !errors.Is(err, ErrBadManifest) {
			t.Fatalf("truncation at %d accepted (err=%v)", n, err)
		}
	}
	// Trailing garbage.
	if _, err := DecodeManifest(append(bytes.Clone(enc), 0)); !errors.Is(err, ErrBadManifest) {
		t.Fatal("trailing byte accepted")
	}
	// Wrong magic / version.
	bad := bytes.Clone(enc)
	bad[0] = 'X'
	if _, err := DecodeManifest(bad); !errors.Is(err, ErrBadManifest) {
		t.Fatal("bad magic accepted")
	}
	bad = bytes.Clone(enc)
	bad[4] = 99
	if _, err := DecodeManifest(bad); !errors.Is(err, ErrBadManifest) {
		t.Fatal("bad version accepted")
	}
	// Huge declared count must be rejected before allocating.
	bad = bytes.Clone(enc)
	bad[5], bad[6], bad[7], bad[8] = 0xff, 0xff, 0xff, 0xff
	if _, err := DecodeManifest(bad); !errors.Is(err, ErrBadManifest) {
		t.Fatal("absurd count accepted")
	}
}

func TestManifestHelpers(t *testing.T) {
	m := sampleManifest()
	if hs := m.Hashes(); len(hs) != 2 {
		t.Fatalf("hashes = %d, want 2", len(hs))
	}
	if lb := m.LogicalBytes(); lb != 5 {
		t.Fatalf("logical bytes = %d", lb)
	}
	if e, ok := m.Lookup("/docs/a.txt"); !ok || e.Size != 5 {
		t.Fatalf("lookup: %+v %v", e, ok)
	}
	if _, ok := m.Lookup("/nope"); ok {
		t.Fatal("lookup of missing path succeeded")
	}
	store := NewStore()
	store.Put([]byte("alpha"))
	missing := m.MissingFrom(store)
	if len(missing) != 1 || missing[0] != Sum(nil) {
		t.Fatalf("missing = %v", missing)
	}
}

// FuzzManifestCodec feeds arbitrary bytes to the decoder (must never
// panic or over-allocate) and round-trips any input that decodes.
func FuzzManifestCodec(f *testing.F) {
	f.Add([]byte{})
	f.Add(sampleManifest().EncodeBinary())
	f.Add([]byte("HACM\x01\x00\x00\x00\x00"))
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := DecodeManifest(data)
		if err != nil {
			return
		}
		re := m.EncodeBinary()
		if !bytes.Equal(re, data) {
			t.Fatalf("re-encode differs from accepted input")
		}
	})
}
