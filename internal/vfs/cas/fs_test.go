package cas

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"testing"

	"hacfs/internal/vfs"
)

// dump serializes the user-visible state of a file system: every path
// with its kind, content or target, in sorted order. Used to compare
// cas.FS against the model-verified MemFS oracle.
func dump(t *testing.T, fsys vfs.FileSystem) string {
	t.Helper()
	var b bytes.Buffer
	var visit func(dir string)
	visit = func(dir string) {
		ents, err := fsys.ReadDir(dir)
		if err != nil {
			t.Fatalf("dump readdir %s: %v", dir, err)
		}
		for _, e := range ents {
			p := vfs.Join(dir, e.Name)
			switch e.Type {
			case vfs.TypeDir:
				fmt.Fprintf(&b, "d %s\n", p)
				visit(p)
			case vfs.TypeSymlink:
				tgt, err := fsys.Readlink(p)
				if err != nil {
					t.Fatalf("dump readlink %s: %v", p, err)
				}
				fmt.Fprintf(&b, "l %s -> %s\n", p, tgt)
			case vfs.TypeFile:
				data, err := fsys.ReadFile(p)
				if err != nil {
					t.Fatalf("dump read %s: %v", p, err)
				}
				fmt.Fprintf(&b, "f %s %q\n", p, data)
			}
		}
	}
	visit("/")
	return b.String()
}

// TestEquivalenceWithMemFS drives a long randomized operation sequence
// against MemFS (itself verified against a reference model) and cas.FS
// in lockstep, requiring identical success/failure on every step and
// identical trees afterwards. Periodic Snapshot/Clone calls on the cas
// side exercise copy-on-write under the same comparison.
func TestEquivalenceWithMemFS(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			mem := vfs.New()
			cfs := New(nil)
			var snaps []*Snap

			paths := []string{"/a", "/b", "/a/x", "/a/y", "/b/z", "/a/x/deep", "/c", "/a/x/q"}
			randPath := func() string { return paths[rng.Intn(len(paths))] }

			type result struct {
				err  error
				data []byte
				str  string
			}
			apply := func(fsys vfs.FileSystem, op int, p, p2, content string) result {
				switch op {
				case 0:
					return result{err: fsys.Mkdir(p)}
				case 1:
					return result{err: fsys.MkdirAll(p)}
				case 2:
					return result{err: fsys.WriteFile(p, []byte(content))}
				case 3:
					d, err := fsys.ReadFile(p)
					return result{err: err, data: d}
				case 4:
					return result{err: fsys.Symlink(p2, p)}
				case 5:
					s, err := fsys.Readlink(p)
					return result{err: err, str: s}
				case 6:
					return result{err: fsys.Remove(p)}
				case 7:
					return result{err: fsys.RemoveAll(p)}
				case 8:
					return result{err: fsys.Rename(p, p2)}
				case 9:
					inf, err := fsys.Stat(p)
					if err != nil {
						return result{err: err}
					}
					return result{str: fmt.Sprintf("%s/%v/%d", inf.Name, inf.Type, inf.Size)}
				case 10:
					inf, err := fsys.Lstat(p)
					if err != nil {
						return result{err: err}
					}
					return result{str: fmt.Sprintf("%s/%v/%d/%s", inf.Name, inf.Type, inf.Size, inf.Target)}
				case 11: // handle-based write session
					f, err := fsys.OpenFile(p, vfs.ORead|vfs.OWrite|vfs.OCreate)
					if err != nil {
						return result{err: err}
					}
					if _, err := f.Seek(0, io.SeekEnd); err != nil {
						f.Close()
						return result{err: err}
					}
					if _, err := f.Write([]byte(content)); err != nil {
						f.Close()
						return result{err: err}
					}
					if err := f.Truncate(int64(len(content))); err != nil {
						f.Close()
						return result{err: err}
					}
					return result{err: f.Close()}
				default:
					panic("bad op")
				}
			}

			for step := 0; step < 1500; step++ {
				op := rng.Intn(12)
				p, p2 := randPath(), randPath()
				content := fmt.Sprintf("content-%d-%d", rng.Intn(5), step%7)
				mr := apply(mem, op, p, p2, content)
				cr := apply(cfs, op, p, p2, content)
				if (mr.err == nil) != (cr.err == nil) {
					t.Fatalf("step %d op %d %s %s: memfs err %v, cas err %v", step, op, p, p2, mr.err, cr.err)
				}
				if mr.err != nil {
					// Same sentinel class.
					for _, sentinel := range []error{
						vfs.ErrNotExist, vfs.ErrExist, vfs.ErrNotDir, vfs.ErrIsDir,
						vfs.ErrNotEmpty, vfs.ErrInvalid, vfs.ErrLoop,
					} {
						if errors.Is(mr.err, sentinel) != errors.Is(cr.err, sentinel) {
							t.Fatalf("step %d op %d %s: memfs %v vs cas %v (sentinel %v)", step, op, p, mr.err, cr.err, sentinel)
						}
					}
				}
				if !bytes.Equal(mr.data, cr.data) || mr.str != cr.str {
					t.Fatalf("step %d op %d %s: memfs (%q,%q) vs cas (%q,%q)", step, op, p, mr.data, mr.str, cr.data, cr.str)
				}
				// Periodically seal: results before and after must match
				// MemFS exactly (sealing is invisible to the API).
				if step%97 == 13 {
					snaps = append(snaps, cfs.Snapshot())
				}
				if step%211 == 37 {
					cfs = cfs.Clone()
				}
				if step%127 == 0 {
					if d1, d2 := dump(t, mem), dump(t, cfs); d1 != d2 {
						t.Fatalf("step %d: trees diverge\nmemfs:\n%s\ncas:\n%s", step, d1, d2)
					}
				}
			}
			if d1, d2 := dump(t, mem), dump(t, cfs); d1 != d2 {
				t.Fatalf("final trees diverge\nmemfs:\n%s\ncas:\n%s", d1, d2)
			}
			_ = snaps
		})
	}
}

// TestSnapshotIsolation verifies that a sealed snapshot is immutable
// under later writes, and that Restore rewinds precisely to it.
func TestSnapshotIsolation(t *testing.T) {
	fs := New(nil)
	if err := fs.MkdirAll("/docs"); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("/docs/a", []byte("alpha")); err != nil {
		t.Fatal(err)
	}
	if err := fs.Symlink("/docs/a", "/docs/ln"); err != nil {
		t.Fatal(err)
	}
	before := dump(t, fs)
	snap := fs.Snapshot()

	// Mutate heavily after the seal.
	if err := fs.WriteFile("/docs/a", []byte("changed")); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("/docs/b", []byte("new")); err != nil {
		t.Fatal(err)
	}
	if err := fs.Remove("/docs/ln"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Rename("/docs/a", "/docs/a2"); err != nil {
		t.Fatal(err)
	}

	if err := fs.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if after := dump(t, fs); after != before {
		t.Fatalf("restore did not rewind:\nbefore:\n%s\nafter:\n%s", before, after)
	}
	if got, _ := fs.ReadFile("/docs/a"); string(got) != "alpha" {
		t.Fatalf("restored content = %q", got)
	}
}

// TestCloneIndependence verifies clones diverge copy-on-write without
// affecting each other, while sharing one store.
func TestCloneIndependence(t *testing.T) {
	fs := New(nil)
	if err := fs.MkdirAll("/d"); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("/d/f", []byte("shared")); err != nil {
		t.Fatal(err)
	}
	c := fs.Clone()
	if fs.Store() != c.Store() {
		t.Fatal("clone must share the store")
	}
	if err := c.WriteFile("/d/f", []byte("clone-side")); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("/d/g", []byte("src-side")); err != nil {
		t.Fatal(err)
	}
	if got, _ := fs.ReadFile("/d/f"); string(got) != "shared" {
		t.Fatalf("source sees clone's write: %q", got)
	}
	if _, err := c.ReadFile("/d/g"); !errors.Is(err, vfs.ErrNotExist) {
		t.Fatalf("clone sees source's new file: %v", err)
	}
}

// TestDedupAccounting checks the refcount and unique-byte rules:
// identical content across files costs one blob; overwrite and remove
// release the overlay's references.
func TestDedupAccounting(t *testing.T) {
	store := NewStore()
	fs := New(store)
	payload := bytes.Repeat([]byte("x"), 1000)
	for i := 0; i < 10; i++ {
		if err := fs.WriteFile(fmt.Sprintf("/f%d", i), payload); err != nil {
			t.Fatal(err)
		}
	}
	if got := store.UniqueBytes(); got != 1000 {
		t.Fatalf("unique bytes = %d, want 1000", got)
	}
	if got := store.LogicalBytes(); got != 10000 {
		t.Fatalf("logical bytes = %d, want 10000", got)
	}
	if r := store.DedupRatio(); r != 10 {
		t.Fatalf("dedup ratio = %v, want 10", r)
	}
	// Removing 9 of 10 references keeps the blob; removing the last
	// frees it.
	for i := 0; i < 9; i++ {
		if err := fs.Remove(fmt.Sprintf("/f%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if got := store.UniqueBytes(); got != 1000 {
		t.Fatalf("unique bytes after 9 removes = %d, want 1000", got)
	}
	if err := fs.Remove("/f9"); err != nil {
		t.Fatal(err)
	}
	if got := store.UniqueBytes(); got != 0 {
		t.Fatalf("unique bytes after all removes = %d, want 0", got)
	}
	if got := store.Blobs(); got != 0 {
		t.Fatalf("blobs = %d, want 0", got)
	}

	// Overwrite releases the old content's reference.
	if err := fs.WriteFile("/w", []byte("first")); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("/w", []byte("second!")); err != nil {
		t.Fatal(err)
	}
	if got := store.UniqueBytes(); got != int64(len("second!")) {
		t.Fatalf("unique bytes after overwrite = %d", got)
	}

	// Content pinned by a snapshot survives overlay removal.
	_ = fs.Snapshot()
	if err := fs.Remove("/w"); err != nil {
		t.Fatal(err)
	}
	if got := store.UniqueBytes(); got != int64(len("second!")) {
		t.Fatalf("snapshot-pinned content freed: unique=%d", got)
	}
}

// TestHandleAcrossSeal verifies a handle opened before a snapshot
// copy-on-writes at its next write instead of mutating the sealed base.
func TestHandleAcrossSeal(t *testing.T) {
	fs := New(nil)
	if err := fs.WriteFile("/f", []byte("sealed")); err != nil {
		t.Fatal(err)
	}
	f, err := fs.OpenFile("/f", vfs.ORead|vfs.OWrite)
	if err != nil {
		t.Fatal(err)
	}
	snap := fs.Snapshot()
	if _, err := f.WriteAt([]byte("SEALED"), 0); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if got, _ := fs.ReadFile("/f"); string(got) != "SEALED" {
		t.Fatalf("live tree = %q", got)
	}
	if err := fs.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if got, _ := fs.ReadFile("/f"); string(got) != "sealed" {
		t.Fatalf("snapshot was mutated through the handle: %q", got)
	}
}

// TestManifestRoundTrip checks Manifest → FromManifest reproduces the
// tree exactly, and ReplaceWithManifest swaps a live tree.
func TestManifestRoundTrip(t *testing.T) {
	fs := New(nil)
	if err := fs.MkdirAll("/a/b"); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("/a/b/f1", []byte("one")); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("/a/f2", []byte("two")); err != nil {
		t.Fatal(err)
	}
	if err := fs.Symlink("/a/f2", "/a/b/ln"); err != nil {
		t.Fatal(err)
	}
	m := fs.Manifest()
	if len(m.Entries) != 6 { // /, /a, /a/b, /a/b/f1, /a/b/ln, /a/f2
		t.Fatalf("manifest entries = %d, want 6", len(m.Entries))
	}
	if !sort.SliceIsSorted(m.Entries, func(i, j int) bool { return m.Entries[i].Path < m.Entries[j].Path }) {
		t.Fatal("manifest not sorted")
	}
	rebuilt, err := FromManifest(m, fs.Store())
	if err != nil {
		t.Fatal(err)
	}
	if d1, d2 := dump(t, fs), dump(t, rebuilt); d1 != d2 {
		t.Fatalf("rebuilt tree diverges:\n%s\nvs\n%s", d1, d2)
	}

	other := New(fs.Store())
	if err := other.WriteFile("/old", []byte("gone")); err != nil {
		t.Fatal(err)
	}
	if err := other.ReplaceWithManifest(m); err != nil {
		t.Fatal(err)
	}
	if d1, d2 := dump(t, fs), dump(t, other); d1 != d2 {
		t.Fatalf("replaced tree diverges:\n%s\nvs\n%s", d1, d2)
	}

	// A manifest naming a missing blob must be refused.
	var bogus Manifest
	bogus.Entries = append(bogus.Entries, Entry{Path: "/", Type: vfs.TypeDir})
	bogus.Entries = append(bogus.Entries, Entry{Path: "/f", Type: vfs.TypeFile, Hash: Sum([]byte("never stored"))})
	if _, err := FromManifest(&bogus, NewStore()); !errors.Is(err, vfs.ErrNotExist) {
		t.Fatalf("missing blob: err = %v", err)
	}
}

// TestSnapshotterViaFaultFS ensures cas.FS composes with FaultFS the
// way model checks use it: ops pass through, Under unwraps.
func TestUnderFaultFS(t *testing.T) {
	cfs := New(nil)
	ffs := vfs.NewFaultFS(cfs, vfs.FaultConfig{})
	if err := ffs.MkdirAll("/x"); err != nil {
		t.Fatal(err)
	}
	if err := ffs.WriteFile("/x/f", []byte("through faults")); err != nil {
		t.Fatal(err)
	}
	if got, err := cfs.ReadFile("/x/f"); err != nil || string(got) != "through faults" {
		t.Fatalf("read-through: %q, %v", got, err)
	}
	if ffs.Under() != vfs.FileSystem(cfs) {
		t.Fatal("Under() must expose the cas substrate")
	}
}
