// Package cas implements the content-addressed substrate (DESIGN.md
// §15): a BlobStore holding immutable, SHA-256-keyed, refcounted blobs,
// a Manifest describing one volume tree as paths over those hashes, and
// FS — a copy-on-write vfs.FileSystem whose file contents live in the
// store. Identical content is stored once no matter how many files,
// volumes or tenants reference it; sealing the mutable overlay into a
// new immutable base (Snapshot/Clone) is O(1); and replicating a volume
// costs the manifest plus only the blobs the receiver is missing.
//
// The design follows c4fs (SNIPPETS.md #2): the manifest is the
// snapshot, and sync is "ship the manifest, fetch missing IDs".
package cas

import (
	"crypto/sha256"
	"encoding/hex"
	"sync"

	"hacfs/internal/obs"
)

// Hash is the SHA-256 digest of a blob's content — its identity in the
// store, in manifests, and on the wire.
type Hash [sha256.Size]byte

// Sum returns the content hash of data.
func Sum(data []byte) Hash { return sha256.Sum256(data) }

// String returns the full lowercase-hex digest.
func (h Hash) String() string { return hex.EncodeToString(h[:]) }

// Short returns an abbreviated hex digest for logs and listings.
func (h Hash) Short() string { return hex.EncodeToString(h[:6]) }

type blob struct {
	data []byte
	refs int64
}

// BlobStore is a refcounted content-addressed blob store. Blobs are
// immutable: Put never overwrites, it only bumps the refcount when the
// content already exists. A blob is dropped when its refcount reaches
// zero. One BlobStore may back many FS instances (hacvold shares one
// across all tenants), so identical content is stored once per process.
//
// Refcount rules (DESIGN.md §15): the live overlay of every FS owns one
// reference per file whose content it wrote or loaded; overwriting or
// removing such a file releases that reference. Content reachable only
// through sealed bases (snapshots, clones' shared history) keeps the
// references acquired while it was live, pinning it for the life of the
// process — sealing is O(1) precisely because it does not re-walk the
// tree to transfer ownership.
type BlobStore struct {
	// amu serializes measured mutation sections (Measured) so that
	// concurrent writers cannot interleave inside each other's
	// unique-byte deltas. It is always acquired before mu.
	amu sync.Mutex

	mu      sync.Mutex
	blobs   map[Hash]*blob
	unique  int64 // total bytes of live unique blobs
	logical int64 // sum over blobs of refs × size
}

// NewStore returns an empty blob store.
func NewStore() *BlobStore {
	return &BlobStore{blobs: make(map[Hash]*blob)}
}

// Put stores data under its content hash and acquires one reference.
// It returns the hash and the number of unique bytes the call added to
// the store: len(data) when the content was new, 0 when it was a dedup
// hit. The data is copied; callers may reuse the buffer.
func (s *BlobStore) Put(data []byte) (Hash, int64) {
	h := Sum(data)
	s.mu.Lock()
	defer s.mu.Unlock()
	if b, ok := s.blobs[h]; ok {
		b.refs++
		s.logical += int64(len(b.data))
		return h, 0
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	s.blobs[h] = &blob{data: cp, refs: 1}
	s.unique += int64(len(cp))
	s.logical += int64(len(cp))
	return h, int64(len(cp))
}

// Get returns the content stored under h. The returned slice is the
// store's internal buffer and must not be modified; copy before
// mutating.
func (s *BlobStore) Get(h Hash) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.blobs[h]
	if !ok {
		return nil, false
	}
	return b.data, true
}

// Has reports whether the store holds content with hash h.
func (s *BlobStore) Has(h Hash) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.blobs[h]
	return ok
}

// Size returns the content length of blob h, or -1 if absent.
func (s *BlobStore) Size(h Hash) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.blobs[h]
	if !ok {
		return -1
	}
	return int64(len(b.data))
}

// Ref acquires an additional reference on h. It reports whether the
// blob exists.
func (s *BlobStore) Ref(h Hash) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.blobs[h]
	if !ok {
		return false
	}
	b.refs++
	s.logical += int64(len(b.data))
	return true
}

// Unref releases one reference on h, dropping the blob when the count
// reaches zero. It returns the number of unique bytes freed (0 unless
// this was the last reference, or the blob was absent).
func (s *BlobStore) Unref(h Hash) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.blobs[h]
	if !ok {
		return 0
	}
	b.refs--
	s.logical -= int64(len(b.data))
	if b.refs > 0 {
		return 0
	}
	delete(s.blobs, h)
	n := int64(len(b.data))
	s.unique -= n
	return n
}

// Blobs returns the number of live unique blobs.
func (s *BlobStore) Blobs() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.blobs)
}

// UniqueBytes returns the total size of live unique content — the
// store's true footprint.
func (s *BlobStore) UniqueBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.unique
}

// LogicalBytes returns the total size as seen by referents (refs ×
// size summed over blobs) — what the same content would occupy without
// dedup.
func (s *BlobStore) LogicalBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.logical
}

// DedupRatio returns logical ÷ unique bytes (1 for an empty store).
// A ratio of 3 means the store holds a third of what plain storage
// would.
func (s *BlobStore) DedupRatio() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.unique == 0 {
		return 1
	}
	return float64(s.logical) / float64(s.unique)
}

// Measured runs fn inside the store's accounting section and returns
// the change in unique bytes it caused. Mutations from concurrent
// Measured sections are excluded by construction (they serialize on the
// accounting lock); unmeasured writers would fold into the delta, so a
// process that charges quotas by unique bytes must route every
// store-mutating write through Measured — serve.Host does.
func (s *BlobStore) Measured(fn func() error) (int64, error) {
	s.amu.Lock()
	defer s.amu.Unlock()
	before := s.UniqueBytes()
	err := fn()
	return s.UniqueBytes() - before, err
}

// PublishMetrics registers scrape-time gauges describing the store in
// reg (DESIGN.md §9 catalog): cas_unique_bytes, cas_logical_bytes,
// cas_blobs and cas_dedup_ratio. Safe to call more than once; later
// calls re-bind the gauges to this store.
func (s *BlobStore) PublishMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	reg.GaugeFunc("cas_unique_bytes", func() float64 { return float64(s.UniqueBytes()) })
	reg.GaugeFunc("cas_logical_bytes", func() float64 { return float64(s.LogicalBytes()) })
	reg.GaugeFunc("cas_blobs", func() float64 { return float64(s.Blobs()) })
	reg.GaugeFunc("cas_dedup_ratio", s.DedupRatio)
}
