package vfs

import (
	gopath "path"
	"sort"
	"strings"
)

// Glob returns the paths matching pattern, which is interpreted
// component-wise with path.Match syntax (*, ?, [...]). The pattern must
// be absolute. Matching is purely name-based: symlinks are matched by
// name, never followed. Results are sorted. A pattern with no
// metacharacters matches itself iff the object exists.
func Glob(fsys FileSystem, pattern string) ([]string, error) {
	clean, err := Clean(pattern)
	if err != nil {
		return nil, err
	}
	if !hasMeta(clean) {
		if _, err := fsys.Lstat(clean); err != nil {
			return nil, nil
		}
		return []string{clean}, nil
	}
	comps := components(clean)
	matches := []string{"/"}
	for _, comp := range comps {
		var next []string
		if !hasMeta(comp) {
			for _, dir := range matches {
				p := Join(dir, comp)
				if _, err := fsys.Lstat(p); err == nil {
					next = append(next, p)
				}
			}
		} else {
			for _, dir := range matches {
				entries, err := fsys.ReadDir(dir)
				if err != nil {
					continue
				}
				for _, e := range entries {
					ok, err := gopath.Match(comp, e.Name)
					if err != nil {
						return nil, err
					}
					if ok {
						next = append(next, Join(dir, e.Name))
					}
				}
			}
		}
		matches = next
		if len(matches) == 0 {
			return nil, nil
		}
	}
	sort.Strings(matches)
	return matches, nil
}

func hasMeta(s string) bool {
	return strings.ContainsAny(s, "*?[")
}
