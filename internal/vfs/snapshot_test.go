package vfs

import (
	"bytes"
	"reflect"
	"testing"
	"time"
)

func TestSnapshotRoundTrip(t *testing.T) {
	fs := New()
	clock := time.Date(2026, 3, 1, 12, 0, 0, 0, time.UTC)
	fs.SetClock(func() time.Time { return clock })
	mustMkdirAll(t, fs, "/a/b")
	mustWrite(t, fs, "/a/b/f.txt", "file content")
	mustWrite(t, fs, "/top.txt", "top")
	if err := fs.Symlink("/a/b/f.txt", "/a/ln"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Symlink("/nowhere", "/dangling"); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := fs.Save(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}

	// Same file set, contents, and link targets.
	origFiles, _ := Files(fs, "/")
	newFiles, _ := Files(restored, "/")
	if !reflect.DeepEqual(origFiles, newFiles) {
		t.Fatalf("files differ: %v vs %v", origFiles, newFiles)
	}
	data, err := restored.ReadFile("/a/b/f.txt")
	if err != nil || string(data) != "file content" {
		t.Fatalf("content = %q, %v", data, err)
	}
	target, err := restored.Readlink("/a/ln")
	if err != nil || target != "/a/b/f.txt" {
		t.Fatalf("link target = %q, %v", target, err)
	}
	if target, err := restored.Readlink("/dangling"); err != nil || target != "/nowhere" {
		t.Fatalf("dangling link = %q, %v", target, err)
	}
	// Modification times survive.
	info, err := restored.Stat("/a/b/f.txt")
	if err != nil || !info.ModTime.Equal(clock) {
		t.Fatalf("mtime = %v, want %v (%v)", info.ModTime, clock, err)
	}
}

func TestSnapshotEmptyFS(t *testing.T) {
	var buf bytes.Buffer
	if err := New().Save(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	entries, err := restored.ReadDir("/")
	if err != nil || len(entries) != 0 {
		t.Fatalf("restored root = %v, %v", entries, err)
	}
}

func TestSnapshotExcludesMounts(t *testing.T) {
	host, guest := New(), New()
	mustMkdirAll(t, host, "/mnt")
	mustWrite(t, guest, "/secret.txt", "guest data")
	if err := host.Mount("/mnt", guest); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := host.Save(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// The mount point exists as a plain directory; guest data is not in
	// the image.
	info, err := restored.Stat("/mnt")
	if err != nil || !info.IsDir() {
		t.Fatalf("mount point = %+v, %v", info, err)
	}
	if _, err := restored.Stat("/mnt/secret.txt"); err == nil {
		t.Fatal("guest data leaked into snapshot")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not a snapshot"))); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestFromSnapshotRejectsBadRoot(t *testing.T) {
	if _, err := FromSnapshot([]SnapNode{{Path: "/x", Type: TypeFile}}); err == nil {
		t.Fatal("snapshot without root accepted")
	}
}

func TestSnapshotDeterministicOrder(t *testing.T) {
	fs := New()
	mustMkdirAll(t, fs, "/z")
	mustMkdirAll(t, fs, "/a")
	mustWrite(t, fs, "/z/f", "1")
	mustWrite(t, fs, "/a/g", "2")
	s1 := fs.Snapshot()
	s2 := fs.Snapshot()
	if !reflect.DeepEqual(s1, s2) {
		t.Fatal("snapshots differ between calls")
	}
	// Parents precede children.
	pos := map[string]int{}
	for i, n := range s1 {
		pos[n.Path] = i
	}
	if pos["/a"] > pos["/a/g"] || pos["/z"] > pos["/z/f"] {
		t.Fatalf("order violates parent-first: %v", pos)
	}
}
