package vfs

import (
	"bytes"
	"errors"
	"reflect"
	"testing"
)

func TestFaultFSTransparentWhenQuiet(t *testing.T) {
	fs := NewFaultFS(New(), FaultConfig{})
	if err := fs.MkdirAll("/a/b"); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("/a/b/f.txt", []byte("hello")); err != nil {
		t.Fatal(err)
	}
	data, err := fs.ReadFile("/a/b/f.txt")
	if err != nil || string(data) != "hello" {
		t.Fatalf("ReadFile = %q, %v", data, err)
	}
	if err := fs.Symlink("/a/b/f.txt", "/a/l"); err != nil {
		t.Fatal(err)
	}
	if target, err := fs.Readlink("/a/l"); err != nil || target != "/a/b/f.txt" {
		t.Fatalf("Readlink = %q, %v", target, err)
	}
	st := fs.Stats()
	if st.Ops == 0 || st.Injected != 0 || st.Rejected != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if st.PerOp["write"] != 1 || st.PerOp["read"] != 1 {
		t.Fatalf("per-op counters = %v", st.PerOp)
	}
}

func TestFaultFSDeterministicInjection(t *testing.T) {
	run := func() (errs []int, stats FaultStats) {
		fs := NewFaultFS(New(), FaultConfig{Seed: 7, ErrorRate: 0.3})
		for i := 0; i < 100; i++ {
			if err := fs.WriteFile("/f.txt", []byte("x")); err != nil {
				if !errors.Is(err, ErrInjected) {
					t.Fatalf("op %d: unexpected error %v", i, err)
				}
				errs = append(errs, i)
			}
		}
		return errs, fs.Stats()
	}
	errs1, st1 := run()
	errs2, st2 := run()
	if len(errs1) == 0 {
		t.Fatal("no faults injected at 30% rate over 100 ops")
	}
	if !reflect.DeepEqual(errs1, errs2) {
		t.Fatalf("fault stream not deterministic: %v vs %v", errs1, errs2)
	}
	if st1.Injected != uint64(len(errs1)) || st1.Errors["write"] != st1.Injected {
		t.Fatalf("injected counters wrong: %+v", st1)
	}
	if st2.Injected != st1.Injected {
		t.Fatalf("stats not deterministic: %d vs %d", st1.Injected, st2.Injected)
	}
}

func TestFaultFSPerOpRates(t *testing.T) {
	fs := NewFaultFS(New(), FaultConfig{Seed: 1})
	fs.SetOpErrorRate("remove", 1.0)
	if err := fs.WriteFile("/f.txt", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := fs.Remove("/f.txt"); !errors.Is(err, ErrInjected) {
		t.Fatalf("Remove error = %v, want ErrInjected", err)
	}
	// The path is recorded on the injected error.
	var pe *PathError
	if err := fs.Remove("/f.txt"); !errors.As(err, &pe) || pe.Op != "remove" || pe.Path != "/f.txt" {
		t.Fatalf("injected error not a typed PathError: %v", err)
	}
	// Other ops still work.
	if _, err := fs.ReadFile("/f.txt"); err != nil {
		t.Fatal(err)
	}
}

func TestFaultFSCrashPointFreezesStore(t *testing.T) {
	fs := NewFaultFS(New(), FaultConfig{Seed: 2})
	if err := fs.WriteFile("/a.txt", []byte("a")); err != nil {
		t.Fatal(err)
	}
	fs.CrashAfter(2)
	if err := fs.WriteFile("/b.txt", []byte("b")); err != nil {
		t.Fatal(err) // op 1 of 2: still alive
	}
	if err := fs.WriteFile("/c.txt", []byte("c")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("crash point did not fire: %v", err)
	}
	if !fs.Crashed() {
		t.Fatal("Crashed() = false after crash")
	}
	// Everything fails now, reads included.
	if _, err := fs.ReadFile("/a.txt"); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash read = %v, want ErrCrashed", err)
	}
	if err := fs.Mkdir("/d"); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash mkdir = %v, want ErrCrashed", err)
	}
	st := fs.Stats()
	if st.Crashes != 1 || st.Rejected < 2 {
		t.Fatalf("crash counters = %+v", st)
	}
	// Restart: the store thaws with pre-crash contents intact.
	fs.Restart()
	data, err := fs.ReadFile("/b.txt")
	if err != nil || string(data) != "b" {
		t.Fatalf("post-restart read = %q, %v", data, err)
	}
	if _, err := fs.ReadFile("/c.txt"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("crashed-out write visible after restart: %v", err)
	}
}

func TestFaultFSTornWrite(t *testing.T) {
	mem := New()
	fs := NewFaultFS(mem, FaultConfig{Seed: 3, TornWrites: true})
	if err := fs.WriteFile("/f.txt", []byte("old-contents")); err != nil {
		t.Fatal(err)
	}
	fs.CrashAfter(1)
	long := bytes.Repeat([]byte("new"), 100)
	if err := fs.WriteFile("/f.txt", long); !errors.Is(err, ErrCrashed) {
		t.Fatalf("torn write error = %v, want ErrCrashed", err)
	}
	// The substrate holds a strict prefix of the new data.
	data, err := mem.ReadFile("/f.txt")
	if err != nil {
		t.Fatal(err)
	}
	if len(data) >= len(long) {
		t.Fatalf("torn write committed all %d bytes", len(data))
	}
	if !bytes.HasPrefix(long, data) {
		t.Fatalf("torn write left non-prefix contents %q", data)
	}
}

func TestFaultFSHandleIO(t *testing.T) {
	fs := NewFaultFS(New(), FaultConfig{Seed: 4})
	f, err := fs.Create("/f.txt")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	fs.SetOpErrorRate("fwrite", 1.0)
	if _, err := f.Write([]byte("x")); !errors.Is(err, ErrInjected) {
		t.Fatalf("handle write = %v, want ErrInjected", err)
	}
	fs.SetOpErrorRate("fwrite", 0)
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	st := fs.Stats()
	if st.PerOp["fwrite"] != 2 || st.Errors["fwrite"] != 1 {
		t.Fatalf("handle counters = %+v / %+v", st.PerOp, st.Errors)
	}
}

func TestFaultFSSnapshotDelegation(t *testing.T) {
	mem := New()
	if err := mem.WriteFile("/f.txt", []byte("x")); err != nil {
		t.Fatal(err)
	}
	fs := NewFaultFS(mem, FaultConfig{})
	snap := fs.Snapshot()
	if !reflect.DeepEqual(snap, mem.Snapshot()) {
		t.Fatal("FaultFS snapshot differs from substrate snapshot")
	}
	// A non-snapshotting substrate yields nil.
	double := NewFaultFS(stubFS{}, FaultConfig{})
	if double.Snapshot() != nil {
		t.Fatal("snapshot of non-snapshotter substrate not nil")
	}
}

// stubFS is a FileSystem that is not a Snapshotter.
type stubFS struct{ FileSystem }

func TestCrashWriter(t *testing.T) {
	var buf bytes.Buffer
	w := &CrashWriter{W: &buf, Limit: 5}
	if n, err := w.Write([]byte("abc")); n != 3 || err != nil {
		t.Fatalf("first write = %d, %v", n, err)
	}
	if n, err := w.Write([]byte("defg")); n != 2 || !errors.Is(err, ErrCrashed) {
		t.Fatalf("crossing write = %d, %v", n, err)
	}
	if _, err := w.Write([]byte("h")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash write = %v", err)
	}
	if buf.String() != "abcde" {
		t.Fatalf("written bytes = %q, want %q", buf.String(), "abcde")
	}
}
