package vfs

import (
	"errors"
	"io"
	"strings"
	"testing"
	"time"
)

func mustMkdirAll(t *testing.T, fs FileSystem, p string) {
	t.Helper()
	if err := fs.MkdirAll(p); err != nil {
		t.Fatalf("MkdirAll(%q): %v", p, err)
	}
}

func mustWrite(t *testing.T, fs FileSystem, p, data string) {
	t.Helper()
	if err := fs.WriteFile(p, []byte(data)); err != nil {
		t.Fatalf("WriteFile(%q): %v", p, err)
	}
}

func TestMkdirAndStat(t *testing.T) {
	fs := New()
	if err := fs.Mkdir("/a"); err != nil {
		t.Fatal(err)
	}
	info, err := fs.Stat("/a")
	if err != nil {
		t.Fatal(err)
	}
	if !info.IsDir() || info.Name != "a" {
		t.Fatalf("Stat = %+v, want dir named a", info)
	}
	if err := fs.Mkdir("/a"); !errors.Is(err, ErrExist) {
		t.Fatalf("second Mkdir err = %v, want ErrExist", err)
	}
	if err := fs.Mkdir("/missing/b"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("Mkdir without parent err = %v, want ErrNotExist", err)
	}
	if err := fs.Mkdir("relative"); !errors.Is(err, ErrInvalid) {
		t.Fatalf("relative Mkdir err = %v, want ErrInvalid", err)
	}
}

func TestMkdirAll(t *testing.T) {
	fs := New()
	mustMkdirAll(t, fs, "/a/b/c")
	for _, p := range []string{"/a", "/a/b", "/a/b/c"} {
		info, err := fs.Stat(p)
		if err != nil || !info.IsDir() {
			t.Fatalf("Stat(%q) = %+v, %v", p, info, err)
		}
	}
	// Idempotent.
	mustMkdirAll(t, fs, "/a/b/c")
	// Fails when a component is a file.
	mustWrite(t, fs, "/a/f", "x")
	if err := fs.MkdirAll("/a/f/g"); !errors.Is(err, ErrNotDir) {
		t.Fatalf("MkdirAll through file err = %v, want ErrNotDir", err)
	}
	if err := fs.MkdirAll("/"); err != nil {
		t.Fatalf("MkdirAll(/) = %v", err)
	}
}

func TestWriteAndReadFile(t *testing.T) {
	fs := New()
	mustWrite(t, fs, "/f.txt", "hello world")
	data, err := fs.ReadFile("/f.txt")
	if err != nil || string(data) != "hello world" {
		t.Fatalf("ReadFile = %q, %v", data, err)
	}
	// Overwrite truncates.
	mustWrite(t, fs, "/f.txt", "x")
	data, _ = fs.ReadFile("/f.txt")
	if string(data) != "x" {
		t.Fatalf("after overwrite = %q, want x", data)
	}
	// Returned slice is a copy.
	data[0] = 'y'
	again, _ := fs.ReadFile("/f.txt")
	if string(again) != "x" {
		t.Fatal("ReadFile returned aliased storage")
	}
	if _, err := fs.ReadFile("/nope"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("ReadFile missing err = %v", err)
	}
	if _, err := fs.ReadFile("/"); !errors.Is(err, ErrIsDir) {
		t.Fatalf("ReadFile dir err = %v", err)
	}
}

func TestOpenFileFlags(t *testing.T) {
	fs := New()
	mustWrite(t, fs, "/f", "abcdef")

	// OExcl on existing file fails.
	if _, err := fs.OpenFile("/f", OWrite|OCreate|OExcl); !errors.Is(err, ErrExist) {
		t.Fatalf("OExcl err = %v, want ErrExist", err)
	}
	// OTrunc requires write.
	if _, err := fs.OpenFile("/f", ORead|OTrunc); !errors.Is(err, ErrInvalid) {
		t.Fatalf("read+trunc err = %v, want ErrInvalid", err)
	}
	// No direction flags.
	if _, err := fs.OpenFile("/f", OCreate); !errors.Is(err, ErrInvalid) {
		t.Fatalf("no-direction err = %v, want ErrInvalid", err)
	}
	// Append.
	f, err := fs.OpenFile("/f", OWrite|OAppend)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("XYZ")); err != nil {
		t.Fatal(err)
	}
	f.Close()
	data, _ := fs.ReadFile("/f")
	if string(data) != "abcdefXYZ" {
		t.Fatalf("append result = %q", data)
	}
	// Opening a directory fails.
	if _, err := fs.Open("/"); !errors.Is(err, ErrIsDir) {
		t.Fatalf("open dir err = %v, want ErrIsDir", err)
	}
	// Reading from a write-only handle fails.
	wo, _ := fs.OpenFile("/f", OWrite)
	if _, err := wo.Read(make([]byte, 1)); !errors.Is(err, ErrWriteOnly) {
		t.Fatalf("read on write-only err = %v", err)
	}
	// Writing to a read-only handle fails.
	ro, _ := fs.Open("/f")
	if _, err := ro.Write([]byte("z")); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("write on read-only err = %v", err)
	}
}

func TestHandleReadWriteSeek(t *testing.T) {
	fs := New()
	f, err := fs.Create("/f")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("0123456789")); err != nil {
		t.Fatal(err)
	}
	if pos, err := f.Seek(2, io.SeekStart); err != nil || pos != 2 {
		t.Fatalf("Seek = %d, %v", pos, err)
	}
	buf := make([]byte, 3)
	if n, err := f.Read(buf); err != nil || n != 3 || string(buf) != "234" {
		t.Fatalf("Read = %d %q %v", n, buf, err)
	}
	if pos, _ := f.Seek(-2, io.SeekEnd); pos != 8 {
		t.Fatalf("SeekEnd pos = %d, want 8", pos)
	}
	if pos, _ := f.Seek(1, io.SeekCurrent); pos != 9 {
		t.Fatalf("SeekCurrent pos = %d, want 9", pos)
	}
	if _, err := f.Seek(-100, io.SeekStart); !errors.Is(err, ErrInvalid) {
		t.Fatalf("negative seek err = %v", err)
	}
	// ReadAt does not move the offset.
	if _, err := f.ReadAt(buf, 0); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if string(buf) != "012" {
		t.Fatalf("ReadAt = %q", buf)
	}
	if pos, _ := f.Seek(0, io.SeekCurrent); pos != 9 {
		t.Fatalf("offset moved by ReadAt to %d", pos)
	}
	// WriteAt past end zero-fills.
	if _, err := f.WriteAt([]byte("Z"), 12); err != nil {
		t.Fatal(err)
	}
	st, _ := f.Stat()
	if st.Size != 13 {
		t.Fatalf("size after WriteAt = %d, want 13", st.Size)
	}
	if err := f.Truncate(5); err != nil {
		t.Fatal(err)
	}
	if st, _ := f.Stat(); st.Size != 5 {
		t.Fatalf("size after Truncate = %d, want 5", st.Size)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); !errors.Is(err, ErrClosed) {
		t.Fatalf("double close err = %v", err)
	}
	if _, err := f.Read(buf); !errors.Is(err, ErrClosed) {
		t.Fatalf("read after close err = %v", err)
	}
}

func TestReadAtEOF(t *testing.T) {
	fs := New()
	mustWrite(t, fs, "/f", "abc")
	f, _ := fs.Open("/f")
	defer f.Close()
	buf := make([]byte, 10)
	n, err := f.ReadAt(buf, 1)
	if n != 2 || err != io.EOF {
		t.Fatalf("short ReadAt = %d, %v; want 2, EOF", n, err)
	}
	if _, err := f.ReadAt(buf, 99); err != io.EOF {
		t.Fatalf("past-end ReadAt err = %v, want EOF", err)
	}
}

func TestRemove(t *testing.T) {
	fs := New()
	mustMkdirAll(t, fs, "/d/sub")
	mustWrite(t, fs, "/d/f", "x")

	if err := fs.Remove("/d"); !errors.Is(err, ErrNotEmpty) {
		t.Fatalf("remove non-empty err = %v", err)
	}
	if err := fs.Remove("/d/f"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Remove("/d/sub"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Remove("/d"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Remove("/d"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("remove missing err = %v", err)
	}
}

func TestRemoveAll(t *testing.T) {
	fs := New()
	mustMkdirAll(t, fs, "/d/a/b")
	mustWrite(t, fs, "/d/a/f", "x")
	mustWrite(t, fs, "/d/g", "y")
	if err := fs.RemoveAll("/d"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Stat("/d"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("after RemoveAll, Stat err = %v", err)
	}
	// Missing path is fine.
	if err := fs.RemoveAll("/never"); err != nil {
		t.Fatalf("RemoveAll missing = %v", err)
	}
	if err := fs.RemoveAll("/"); !errors.Is(err, ErrInvalid) {
		t.Fatalf("RemoveAll root err = %v", err)
	}
}

func TestRename(t *testing.T) {
	fs := New()
	mustMkdirAll(t, fs, "/a/b")
	mustWrite(t, fs, "/a/b/f", "data")

	if err := fs.Rename("/a/b", "/c"); err != nil {
		t.Fatal(err)
	}
	if data, err := fs.ReadFile("/c/f"); err != nil || string(data) != "data" {
		t.Fatalf("after rename ReadFile = %q, %v", data, err)
	}
	if _, err := fs.Stat("/a/b"); !errors.Is(err, ErrNotExist) {
		t.Fatal("source still exists after rename")
	}
	// Replace an existing file.
	mustWrite(t, fs, "/x", "new")
	mustWrite(t, fs, "/y", "old")
	if err := fs.Rename("/x", "/y"); err != nil {
		t.Fatal(err)
	}
	if data, _ := fs.ReadFile("/y"); string(data) != "new" {
		t.Fatalf("replaced content = %q", data)
	}
	// Dir over non-empty dir fails.
	mustMkdirAll(t, fs, "/full/inner")
	mustMkdirAll(t, fs, "/src")
	if err := fs.Rename("/src", "/full"); !errors.Is(err, ErrNotEmpty) {
		t.Fatalf("rename over non-empty dir err = %v", err)
	}
	// File over dir fails.
	if err := fs.Rename("/y", "/full"); !errors.Is(err, ErrIsDir) {
		t.Fatalf("file over dir err = %v", err)
	}
	// Dir over file fails.
	if err := fs.Rename("/src", "/y"); !errors.Is(err, ErrNotDir) {
		t.Fatalf("dir over file err = %v", err)
	}
	// Move into own subtree fails.
	mustMkdirAll(t, fs, "/t/u")
	if err := fs.Rename("/t", "/t/u/v"); !errors.Is(err, ErrInvalid) {
		t.Fatalf("rename into self err = %v", err)
	}
	// Rename to itself is a no-op.
	if err := fs.Rename("/t", "/t"); err != nil {
		t.Fatalf("self rename err = %v", err)
	}
	// Missing source.
	if err := fs.Rename("/missing", "/z"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("missing source err = %v", err)
	}
}

func TestRenamePreservesIno(t *testing.T) {
	fs := New()
	mustMkdirAll(t, fs, "/a")
	before, _ := fs.Stat("/a")
	if err := fs.Rename("/a", "/b"); err != nil {
		t.Fatal(err)
	}
	after, _ := fs.Stat("/b")
	if before.Ino != after.Ino {
		t.Fatalf("rename changed ino %d → %d", before.Ino, after.Ino)
	}
}

func TestSymlinks(t *testing.T) {
	fs := New()
	mustMkdirAll(t, fs, "/real")
	mustWrite(t, fs, "/real/f", "content")
	if err := fs.Symlink("/real", "/link"); err != nil {
		t.Fatal(err)
	}
	// Follow through the link.
	if data, err := fs.ReadFile("/link/f"); err != nil || string(data) != "content" {
		t.Fatalf("through-link read = %q, %v", data, err)
	}
	// Stat follows, Lstat does not.
	if info, _ := fs.Stat("/link"); !info.IsDir() {
		t.Fatal("Stat did not follow symlink")
	}
	li, err := fs.Lstat("/link")
	if err != nil || li.Type != TypeSymlink || li.Target != "/real" {
		t.Fatalf("Lstat = %+v, %v", li, err)
	}
	if target, err := fs.Readlink("/link"); err != nil || target != "/real" {
		t.Fatalf("Readlink = %q, %v", target, err)
	}
	if _, err := fs.Readlink("/real"); !errors.Is(err, ErrInvalid) {
		t.Fatalf("Readlink on dir err = %v", err)
	}
	// Relative symlink.
	if err := fs.Symlink("f", "/real/rel"); err != nil {
		t.Fatal(err)
	}
	if data, err := fs.ReadFile("/real/rel"); err != nil || string(data) != "content" {
		t.Fatalf("relative link read = %q, %v", data, err)
	}
	// Dangling symlink: Lstat ok, Stat fails.
	if err := fs.Symlink("/nowhere", "/dangling"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Lstat("/dangling"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Stat("/dangling"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("Stat dangling err = %v", err)
	}
	// Remove deletes the link, not the target.
	if err := fs.Remove("/link"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Stat("/real/f"); err != nil {
		t.Fatal("removing symlink removed target")
	}
}

func TestSymlinkLoop(t *testing.T) {
	fs := New()
	if err := fs.Symlink("/b", "/a"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Symlink("/a", "/b"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Stat("/a"); !errors.Is(err, ErrLoop) {
		t.Fatalf("loop Stat err = %v, want ErrLoop", err)
	}
}

func TestReadDirSorted(t *testing.T) {
	fs := New()
	mustMkdirAll(t, fs, "/d")
	for _, name := range []string{"zeta", "alpha", "mid"} {
		mustWrite(t, fs, "/d/"+name, "x")
	}
	entries, err := fs.ReadDir("/d")
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range entries {
		names = append(names, e.Name)
	}
	if strings.Join(names, ",") != "alpha,mid,zeta" {
		t.Fatalf("ReadDir order = %v", names)
	}
	if _, err := fs.ReadDir("/d/alpha"); !errors.Is(err, ErrNotDir) {
		t.Fatalf("ReadDir on file err = %v", err)
	}
}

func TestModTime(t *testing.T) {
	fs := New()
	clock := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	fs.SetClock(func() time.Time { return clock })
	mustWrite(t, fs, "/f", "a")
	first, _ := fs.Stat("/f")
	clock = clock.Add(time.Hour)
	mustWrite(t, fs, "/f", "b")
	second, _ := fs.Stat("/f")
	if !second.ModTime.After(first.ModTime) {
		t.Fatalf("mtime not advanced: %v → %v", first.ModTime, second.ModTime)
	}
}

func TestStatsCounting(t *testing.T) {
	fs := New()
	mustMkdirAll(t, fs, "/d")
	mustWrite(t, fs, "/d/f", "x")
	if _, err := fs.Stat("/d/f"); err != nil {
		t.Fatal(err)
	}
	s := fs.Stats()
	if s.Mkdirs == 0 || s.Writes == 0 || s.Stats == 0 {
		t.Fatalf("stats not counted: %+v", s)
	}
}

func TestPathErrorShape(t *testing.T) {
	fs := New()
	_, err := fs.Stat("/missing")
	var perr *PathError
	if !errors.As(err, &perr) {
		t.Fatalf("error %T is not *PathError", err)
	}
	if perr.Op != "stat" || perr.Path != "/missing" {
		t.Fatalf("PathError = %+v", perr)
	}
	if !strings.Contains(perr.Error(), "/missing") {
		t.Fatalf("Error() = %q", perr.Error())
	}
}

func TestLookupThroughFileFails(t *testing.T) {
	fs := New()
	mustWrite(t, fs, "/f", "x")
	if _, err := fs.Stat("/f/sub"); !errors.Is(err, ErrNotDir) {
		t.Fatalf("lookup through file err = %v", err)
	}
}

func TestDotDotResolution(t *testing.T) {
	fs := New()
	mustMkdirAll(t, fs, "/a/b")
	mustWrite(t, fs, "/top", "x")
	if _, err := fs.ReadFile("/a/b/../../top"); err != nil {
		t.Fatalf("dotdot read err = %v", err)
	}
	if _, err := fs.ReadFile("/../top"); err != nil {
		t.Fatalf("above-root read err = %v", err)
	}
}
