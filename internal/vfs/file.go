package vfs

import "io"

// handle is an open file on a MemFS node. The per-process descriptor
// table the paper keeps in shared memory corresponds to the set of live
// handles; the HAC layer accounts for their size separately.
type handle struct {
	fs     *MemFS
	n      *node
	name   string
	flag   int
	off    int64
	closed bool
}

func (fs *MemFS) newHandle(n *node, name string, flag int) *handle {
	return &handle{fs: fs, n: n, name: name, flag: flag}
}

var _ File = (*handle)(nil)

func (h *handle) Name() string { return h.name }

func (h *handle) checkOpen() error {
	if h.closed {
		return pe("file", h.name, ErrClosed)
	}
	return nil
}

// Read reads from the current offset.
func (h *handle) Read(p []byte) (int, error) {
	if err := h.checkOpen(); err != nil {
		return 0, err
	}
	if h.flag&ORead == 0 {
		return 0, pe("read", h.name, ErrWriteOnly)
	}
	h.fs.mu.RLock()
	defer h.fs.mu.RUnlock()
	if h.off >= int64(len(h.n.data)) {
		return 0, io.EOF
	}
	n := copy(p, h.n.data[h.off:])
	h.off += int64(n)
	return n, nil
}

// ReadAt reads len(p) bytes at offset off without moving the handle
// offset.
func (h *handle) ReadAt(p []byte, off int64) (int, error) {
	if err := h.checkOpen(); err != nil {
		return 0, err
	}
	if h.flag&ORead == 0 {
		return 0, pe("read", h.name, ErrWriteOnly)
	}
	if off < 0 {
		return 0, pe("read", h.name, ErrInvalid)
	}
	h.fs.mu.RLock()
	defer h.fs.mu.RUnlock()
	if off >= int64(len(h.n.data)) {
		return 0, io.EOF
	}
	n := copy(p, h.n.data[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

// Write writes at the current offset (or at the end with OAppend),
// extending the file as needed.
func (h *handle) Write(p []byte) (int, error) {
	if err := h.checkOpen(); err != nil {
		return 0, err
	}
	if h.flag&OWrite == 0 {
		return 0, pe("write", h.name, ErrReadOnly)
	}
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.flag&OAppend != 0 {
		h.off = int64(len(h.n.data))
	}
	h.writeAtLocked(p, h.off)
	h.off += int64(len(p))
	return len(p), nil
}

// WriteAt writes at offset off without moving the handle offset.
func (h *handle) WriteAt(p []byte, off int64) (int, error) {
	if err := h.checkOpen(); err != nil {
		return 0, err
	}
	if h.flag&OWrite == 0 {
		return 0, pe("write", h.name, ErrReadOnly)
	}
	if off < 0 {
		return 0, pe("write", h.name, ErrInvalid)
	}
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	h.writeAtLocked(p, off)
	return len(p), nil
}

// writeAtLocked performs the copy; caller holds fs.mu.
func (h *handle) writeAtLocked(p []byte, off int64) {
	end := off + int64(len(p))
	if end > int64(len(h.n.data)) {
		grown := make([]byte, end)
		copy(grown, h.n.data)
		h.n.data = grown
	}
	copy(h.n.data[off:], p)
	h.n.modTime = h.fs.now()
}

// Seek implements io.Seeker.
func (h *handle) Seek(offset int64, whence int) (int64, error) {
	if err := h.checkOpen(); err != nil {
		return 0, err
	}
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	var base int64
	switch whence {
	case io.SeekStart:
		base = 0
	case io.SeekCurrent:
		base = h.off
	case io.SeekEnd:
		base = int64(len(h.n.data))
	default:
		return 0, pe("seek", h.name, ErrInvalid)
	}
	next := base + offset
	if next < 0 {
		return 0, pe("seek", h.name, ErrInvalid)
	}
	h.off = next
	return next, nil
}

// Truncate resizes the file, zero-filling on growth.
func (h *handle) Truncate(size int64) error {
	if err := h.checkOpen(); err != nil {
		return err
	}
	if h.flag&OWrite == 0 {
		return pe("truncate", h.name, ErrReadOnly)
	}
	if size < 0 {
		return pe("truncate", h.name, ErrInvalid)
	}
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	switch {
	case size <= int64(len(h.n.data)):
		h.n.data = h.n.data[:size]
	default:
		grown := make([]byte, size)
		copy(grown, h.n.data)
		h.n.data = grown
	}
	h.n.modTime = h.fs.now()
	return nil
}

// Stat returns current metadata for the open node.
func (h *handle) Stat() (Info, error) {
	if err := h.checkOpen(); err != nil {
		return Info{}, err
	}
	h.fs.mu.RLock()
	defer h.fs.mu.RUnlock()
	return h.n.info(), nil
}

// Close releases the handle. Double close returns ErrClosed.
func (h *handle) Close() error {
	if h.closed {
		return pe("close", h.name, ErrClosed)
	}
	h.closed = true
	return nil
}
