package vfs

import (
	"fmt"
	"testing"
)

func benchTree(b *testing.B, files int) *MemFS {
	b.Helper()
	fs := New()
	for i := 0; i < files; i++ {
		dir := fmt.Sprintf("/d%02d", i%16)
		if err := fs.MkdirAll(dir); err != nil {
			b.Fatal(err)
		}
		if err := fs.WriteFile(fmt.Sprintf("%s/f%04d.txt", dir, i), []byte("content")); err != nil {
			b.Fatal(err)
		}
	}
	return fs
}

func BenchmarkStat(b *testing.B) {
	fs := benchTree(b, 1000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fs.Stat("/d07/f0007.txt"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWriteFile4K(b *testing.B) {
	fs := New()
	if err := fs.MkdirAll("/d"); err != nil {
		b.Fatal(err)
	}
	data := make([]byte, 4096)
	b.SetBytes(4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := fs.WriteFile("/d/f", data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReadFile4K(b *testing.B) {
	fs := New()
	if err := fs.MkdirAll("/d"); err != nil {
		b.Fatal(err)
	}
	if err := fs.WriteFile("/d/f", make([]byte, 4096)); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fs.ReadFile("/d/f"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWalk(b *testing.B) {
	fs := benchTree(b, 1000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		err := Walk(fs, "/", func(string, Info) error {
			n++
			return nil
		})
		if err != nil || n < 1000 {
			b.Fatalf("walk visited %d, %v", n, err)
		}
	}
}

func BenchmarkSymlinkResolution(b *testing.B) {
	fs := New()
	if err := fs.MkdirAll("/real/deep/path"); err != nil {
		b.Fatal(err)
	}
	if err := fs.WriteFile("/real/deep/path/f", []byte("x")); err != nil {
		b.Fatal(err)
	}
	if err := fs.Symlink("/real", "/l1"); err != nil {
		b.Fatal(err)
	}
	if err := fs.Symlink("/l1/deep", "/l2"); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fs.Stat("/l2/path/f"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRename(b *testing.B) {
	fs := New()
	if err := fs.MkdirAll("/a"); err != nil {
		b.Fatal(err)
	}
	if err := fs.WriteFile("/a/x", []byte("x")); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := fs.Rename("/a/x", "/a/y"); err != nil {
			b.Fatal(err)
		}
		if err := fs.Rename("/a/y", "/a/x"); err != nil {
			b.Fatal(err)
		}
	}
}
