package vfs

import (
	"sort"
	"sync"
	"time"
)

// MemFS is an in-memory hierarchical file system. It plays the role the
// native UNIX file system played in the paper: the substrate all
// user-level layers (HAC, Jade-style, Pseudo-style) interpose on.
//
// MemFS is safe for concurrent use. The tree lock is a read/write
// lock: lookups and reads (Stat, ReadFile, ReadDir, …) share it, so
// they proceed concurrently; structural mutations take it exclusively.
type MemFS struct {
	mu      sync.RWMutex
	root    *node
	nextIno uint64
	now     func() time.Time
	mounts  map[uint64]FileSystem // directory ino → mounted file system
	stats   Stats
}

var _ FileSystem = (*MemFS)(nil)

// New returns an empty file system containing only the root directory.
func New() *MemFS {
	fs := &MemFS{
		now:    time.Now,
		mounts: make(map[uint64]FileSystem),
	}
	fs.root = &node{
		ino:      fs.allocIno(),
		typ:      TypeDir,
		name:     "/",
		children: make(map[string]*node),
		modTime:  fs.now(),
	}
	return fs
}

// SetClock replaces the time source, for deterministic tests.
func (fs *MemFS) SetClock(now func() time.Time) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.now = now
}

// Stats returns a snapshot of the operation counters.
func (fs *MemFS) Stats() StatsSnapshot { return fs.stats.snapshot() }

func (fs *MemFS) allocIno() uint64 {
	fs.nextIno++
	return fs.nextIno
}

// target is the outcome of a path walk: either a local node, or a
// delegation into a mounted file system with the remaining path.
type walkTarget struct {
	n    *node
	fs   FileSystem
	rest string
}

const maxSymlinkDepth = 40

// walk resolves p. When followLast is false the final component is not
// dereferenced if it is a symlink. The caller must hold fs.mu.
func (fs *MemFS) walk(p string, followLast bool) (walkTarget, error) {
	clean, err := Clean(p)
	if err != nil {
		return walkTarget{}, err
	}
	comps := components(clean)
	cur := fs.root
	depth := 0
	i := 0
	for {
		// Arriving at a mounted directory hands the remaining path to
		// the mounted file system (the paper's syntactic mount point).
		if m, ok := fs.mounts[cur.ino]; ok {
			return walkTarget{fs: m, rest: "/" + Join(comps[i:]...)}, nil
		}
		if i == len(comps) {
			return walkTarget{n: cur}, nil
		}
		if !cur.isDir() {
			return walkTarget{}, ErrNotDir
		}
		child, ok := cur.children[comps[i]]
		if !ok {
			return walkTarget{}, ErrNotExist
		}
		if child.typ == TypeSymlink && (i < len(comps)-1 || followLast) {
			depth++
			if depth > maxSymlinkDepth {
				return walkTarget{}, ErrLoop
			}
			t := child.target
			if t == "" {
				return walkTarget{}, ErrInvalid
			}
			rest := comps[i+1:]
			if IsAbs(t) {
				cur = fs.root
				comps = append(components(t), rest...)
			} else {
				comps = append(components("/"+t), rest...)
			}
			i = 0
			continue
		}
		cur = child
		i++
	}
}

// walkParent resolves the directory containing p and returns it along
// with the base name. When the directory routes into a mounted file
// system, the delegation target includes the base. The caller must hold
// fs.mu.
func (fs *MemFS) walkParent(p string) (dir *node, base string, deleg walkTarget, err error) {
	clean, err := Clean(p)
	if err != nil {
		return nil, "", walkTarget{}, err
	}
	if clean == "/" {
		return nil, "", walkTarget{}, ErrInvalid
	}
	dirPath, base := Split(clean)
	t, err := fs.walk(dirPath, true)
	if err != nil {
		return nil, "", walkTarget{}, err
	}
	if t.fs != nil {
		return nil, "", walkTarget{fs: t.fs, rest: Join(t.rest, base)}, nil
	}
	if !t.n.isDir() {
		return nil, "", walkTarget{}, ErrNotDir
	}
	// The parent directory may itself be a mount point.
	if m, ok := fs.mounts[t.n.ino]; ok {
		return nil, "", walkTarget{fs: m, rest: "/" + base}, nil
	}
	return t.n, base, walkTarget{}, nil
}

// Mkdir creates a directory. The parent must exist.
func (fs *MemFS) Mkdir(p string) error {
	fs.stats.Mkdirs.Add(1)
	fs.mu.Lock()
	dir, base, deleg, err := fs.walkParent(p)
	if err != nil {
		fs.mu.Unlock()
		return pe("mkdir", p, err)
	}
	if deleg.fs != nil {
		fs.mu.Unlock()
		return deleg.fs.Mkdir(deleg.rest)
	}
	defer fs.mu.Unlock()
	if _, ok := dir.children[base]; ok {
		return pe("mkdir", p, ErrExist)
	}
	fs.addChild(dir, &node{
		ino:      fs.allocIno(),
		typ:      TypeDir,
		name:     base,
		children: make(map[string]*node),
		modTime:  fs.now(),
	})
	return nil
}

// MkdirAll creates a directory and any missing parents. It succeeds if
// the directory already exists.
func (fs *MemFS) MkdirAll(p string) error {
	clean, err := Clean(p)
	if err != nil {
		return pe("mkdir", p, err)
	}
	if clean == "/" {
		return nil
	}
	// Walk down creating as needed; delegate on mounts.
	comps := components(clean)
	for i := 1; i <= len(comps); i++ {
		prefix := "/" + Join(comps[:i]...)
		fs.mu.Lock()
		t, err := fs.walk(prefix, true)
		fs.mu.Unlock()
		switch {
		case err == nil && t.fs != nil:
			return t.fs.MkdirAll(Join(t.rest, Join(comps[i:]...)))
		case err == nil && t.n.isDir():
			continue
		case err == nil:
			return pe("mkdir", prefix, ErrNotDir)
		default:
			if mkErr := fs.Mkdir(prefix); mkErr != nil {
				return mkErr
			}
		}
	}
	return nil
}

// addChild links child into dir and bumps dir's modification time.
// Caller holds fs.mu.
func (fs *MemFS) addChild(dir, child *node) {
	child.parent = dir
	dir.children[child.name] = child
	dir.modTime = fs.now()
}

// removeChild unlinks child from dir. Caller holds fs.mu.
func (fs *MemFS) removeChild(dir *node, name string) {
	delete(dir.children, name)
	dir.modTime = fs.now()
}

// Create creates or truncates a file and opens it for reading and
// writing.
func (fs *MemFS) Create(p string) (File, error) {
	return fs.OpenFile(p, ORead|OWrite|OCreate|OTrunc)
}

// Open opens a file for reading.
func (fs *MemFS) Open(p string) (File, error) {
	return fs.OpenFile(p, ORead)
}

// OpenFile opens p with the given flags.
func (fs *MemFS) OpenFile(p string, flag int) (File, error) {
	fs.stats.Opens.Add(1)
	if flag&(ORead|OWrite) == 0 {
		return nil, pe("open", p, ErrInvalid)
	}
	fs.mu.Lock()
	t, err := fs.walk(p, true)
	if err == nil && t.fs != nil {
		fs.mu.Unlock()
		return t.fs.OpenFile(t.rest, flag)
	}
	if err != nil {
		if err != ErrNotExist || flag&OCreate == 0 {
			fs.mu.Unlock()
			return nil, pe("open", p, err)
		}
		// Create path: parent must exist.
		dir, base, deleg, perr := fs.walkParent(p)
		if perr != nil {
			fs.mu.Unlock()
			return nil, pe("open", p, perr)
		}
		if deleg.fs != nil {
			fs.mu.Unlock()
			return deleg.fs.OpenFile(deleg.rest, flag)
		}
		if _, exists := dir.children[base]; exists {
			// The final component is a dangling symlink; refuse.
			fs.mu.Unlock()
			return nil, pe("open", p, ErrExist)
		}
		n := &node{
			ino:     fs.allocIno(),
			typ:     TypeFile,
			name:    base,
			modTime: fs.now(),
		}
		fs.addChild(dir, n)
		fs.mu.Unlock()
		return fs.newHandle(n, p, flag), nil
	}
	n := t.n
	if n.isDir() {
		fs.mu.Unlock()
		return nil, pe("open", p, ErrIsDir)
	}
	if flag&OExcl != 0 && flag&OCreate != 0 {
		fs.mu.Unlock()
		return nil, pe("open", p, ErrExist)
	}
	if flag&OTrunc != 0 {
		if flag&OWrite == 0 {
			fs.mu.Unlock()
			return nil, pe("open", p, ErrInvalid)
		}
		n.data = nil
		n.modTime = fs.now()
	}
	fs.mu.Unlock()
	return fs.newHandle(n, p, flag), nil
}

// ReadFile returns the contents of the file at p.
func (fs *MemFS) ReadFile(p string) ([]byte, error) {
	fs.stats.Reads.Add(1)
	fs.mu.RLock()
	t, err := fs.walk(p, true)
	if err != nil {
		fs.mu.RUnlock()
		return nil, pe("read", p, err)
	}
	if t.fs != nil {
		fs.mu.RUnlock()
		return t.fs.ReadFile(t.rest)
	}
	defer fs.mu.RUnlock()
	if t.n.isDir() {
		return nil, pe("read", p, ErrIsDir)
	}
	out := make([]byte, len(t.n.data))
	copy(out, t.n.data)
	return out, nil
}

// WriteFile creates or replaces the file at p with data.
func (fs *MemFS) WriteFile(p string, data []byte) error {
	fs.stats.Writes.Add(1)
	f, err := fs.OpenFile(p, OWrite|OCreate|OTrunc)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Symlink creates a symbolic link at link pointing to target. The target
// is stored verbatim and resolved lazily, so dangling links are legal.
func (fs *MemFS) Symlink(target, link string) error {
	fs.stats.Symlinks.Add(1)
	if target == "" {
		return pe("symlink", link, ErrInvalid)
	}
	fs.mu.Lock()
	dir, base, deleg, err := fs.walkParent(link)
	if err != nil {
		fs.mu.Unlock()
		return pe("symlink", link, err)
	}
	if deleg.fs != nil {
		fs.mu.Unlock()
		return deleg.fs.Symlink(target, deleg.rest)
	}
	defer fs.mu.Unlock()
	if _, ok := dir.children[base]; ok {
		return pe("symlink", link, ErrExist)
	}
	fs.addChild(dir, &node{
		ino:     fs.allocIno(),
		typ:     TypeSymlink,
		name:    base,
		target:  target,
		modTime: fs.now(),
	})
	return nil
}

// Readlink returns the target of the symlink at p.
func (fs *MemFS) Readlink(p string) (string, error) {
	fs.mu.RLock()
	t, err := fs.walk(p, false)
	if err != nil {
		fs.mu.RUnlock()
		return "", pe("readlink", p, err)
	}
	if t.fs != nil {
		fs.mu.RUnlock()
		return t.fs.Readlink(t.rest)
	}
	defer fs.mu.RUnlock()
	if t.n.typ != TypeSymlink {
		return "", pe("readlink", p, ErrInvalid)
	}
	return t.n.target, nil
}

// Remove deletes the object at p. Directories must be empty. Symlinks
// are removed, not followed. Mount points cannot be removed.
func (fs *MemFS) Remove(p string) error {
	fs.stats.Removes.Add(1)
	fs.mu.Lock()
	dir, base, deleg, err := fs.walkParent(p)
	if err != nil {
		fs.mu.Unlock()
		return pe("remove", p, err)
	}
	if deleg.fs != nil {
		fs.mu.Unlock()
		return deleg.fs.Remove(deleg.rest)
	}
	defer fs.mu.Unlock()
	n, ok := dir.children[base]
	if !ok {
		return pe("remove", p, ErrNotExist)
	}
	if _, mounted := fs.mounts[n.ino]; mounted {
		return pe("remove", p, ErrBusy)
	}
	if n.isDir() && len(n.children) > 0 {
		return pe("remove", p, ErrNotEmpty)
	}
	fs.removeChild(dir, base)
	return nil
}

// RemoveAll deletes the object at p and, for directories, everything
// beneath it. Removing a non-existent path is not an error. Subtrees
// containing mount points are refused.
func (fs *MemFS) RemoveAll(p string) error {
	fs.stats.Removes.Add(1)
	clean, err := Clean(p)
	if err != nil {
		return pe("removeall", p, err)
	}
	if clean == "/" {
		return pe("removeall", p, ErrInvalid)
	}
	fs.mu.Lock()
	dir, base, deleg, err := fs.walkParent(clean)
	if err != nil {
		fs.mu.Unlock()
		if err == ErrNotExist {
			return nil
		}
		return pe("removeall", p, err)
	}
	if deleg.fs != nil {
		fs.mu.Unlock()
		return deleg.fs.RemoveAll(deleg.rest)
	}
	defer fs.mu.Unlock()
	n, ok := dir.children[base]
	if !ok {
		return nil
	}
	if fs.subtreeHasMount(n) {
		return pe("removeall", p, ErrBusy)
	}
	fs.removeChild(dir, base)
	return nil
}

func (fs *MemFS) subtreeHasMount(n *node) bool {
	if _, ok := fs.mounts[n.ino]; ok {
		return true
	}
	for _, c := range n.children {
		if c.isDir() && fs.subtreeHasMount(c) {
			return true
		}
	}
	return false
}

// Rename moves the object at oldPath to newPath. Following POSIX
// rename: an existing empty directory or file at newPath is replaced;
// a directory cannot be moved into its own subtree; renames may not
// cross mount points.
func (fs *MemFS) Rename(oldPath, newPath string) error {
	fs.stats.Renames.Add(1)
	fs.mu.Lock()
	defer fs.mu.Unlock()

	oldDir, oldBase, oldDeleg, err := fs.walkParent(oldPath)
	if err != nil {
		return pe("rename", oldPath, err)
	}
	newDir, newBase, newDeleg, err := fs.walkParent(newPath)
	if err != nil {
		return pe("rename", newPath, err)
	}
	if oldDeleg.fs != nil || newDeleg.fs != nil {
		if oldDeleg.fs != nil && oldDeleg.fs == newDeleg.fs {
			m := oldDeleg.fs
			fs.mu.Unlock()
			err := m.Rename(oldDeleg.rest, newDeleg.rest)
			fs.mu.Lock()
			return err
		}
		return pe("rename", oldPath, ErrCrossMount)
	}
	src, ok := oldDir.children[oldBase]
	if !ok {
		return pe("rename", oldPath, ErrNotExist)
	}
	if _, mounted := fs.mounts[src.ino]; mounted {
		return pe("rename", oldPath, ErrBusy)
	}
	// Refuse to move a directory under itself.
	if src.isDir() {
		for d := newDir; d != nil; d = d.parent {
			if d == src {
				return pe("rename", newPath, ErrInvalid)
			}
		}
	}
	if dst, exists := newDir.children[newBase]; exists {
		if dst == src {
			return nil // rename to itself
		}
		switch {
		case dst.isDir() && !src.isDir():
			return pe("rename", newPath, ErrIsDir)
		case !dst.isDir() && src.isDir():
			return pe("rename", newPath, ErrNotDir)
		case dst.isDir() && len(dst.children) > 0:
			return pe("rename", newPath, ErrNotEmpty)
		}
		if _, mounted := fs.mounts[dst.ino]; mounted {
			return pe("rename", newPath, ErrBusy)
		}
		fs.removeChild(newDir, newBase)
	}
	fs.removeChild(oldDir, oldBase)
	src.name = newBase
	fs.addChild(newDir, src)
	src.modTime = fs.now()
	return nil
}

// Stat returns metadata for p, following symlinks.
func (fs *MemFS) Stat(p string) (Info, error) {
	fs.stats.Stats.Add(1)
	fs.mu.RLock()
	t, err := fs.walk(p, true)
	if err != nil {
		fs.mu.RUnlock()
		return Info{}, pe("stat", p, err)
	}
	if t.fs != nil {
		fs.mu.RUnlock()
		return t.fs.Stat(t.rest)
	}
	defer fs.mu.RUnlock()
	return t.n.info(), nil
}

// Lstat returns metadata for p without following a final symlink.
func (fs *MemFS) Lstat(p string) (Info, error) {
	fs.stats.Stats.Add(1)
	fs.mu.RLock()
	t, err := fs.walk(p, false)
	if err != nil {
		fs.mu.RUnlock()
		return Info{}, pe("lstat", p, err)
	}
	if t.fs != nil {
		fs.mu.RUnlock()
		return t.fs.Lstat(t.rest)
	}
	defer fs.mu.RUnlock()
	return t.n.info(), nil
}

// ReadDir lists the directory at p in name order.
func (fs *MemFS) ReadDir(p string) ([]DirEntry, error) {
	fs.stats.ReadDirs.Add(1)
	fs.mu.RLock()
	t, err := fs.walk(p, true)
	if err != nil {
		fs.mu.RUnlock()
		return nil, pe("readdir", p, err)
	}
	if t.fs != nil {
		fs.mu.RUnlock()
		return t.fs.ReadDir(t.rest)
	}
	defer fs.mu.RUnlock()
	if !t.n.isDir() {
		return nil, pe("readdir", p, ErrNotDir)
	}
	out := make([]DirEntry, 0, len(t.n.children))
	for _, c := range t.n.children {
		out = append(out, DirEntry{Name: c.name, Type: c.typ, Ino: c.ino})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// Mount attaches m at the directory p; subsequent lookups under p are
// served by m. The directory's previous contents become invisible until
// Unmount, as with UNIX mounts.
func (fs *MemFS) Mount(p string, m FileSystem) error {
	if m == nil || m == FileSystem(fs) {
		return pe("mount", p, ErrInvalid)
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	n, err := fs.lookupNoMount(p)
	if err != nil {
		return pe("mount", p, err)
	}
	if !n.isDir() {
		return pe("mount", p, ErrNotDir)
	}
	if _, ok := fs.mounts[n.ino]; ok {
		return pe("mount", p, ErrBusy)
	}
	fs.mounts[n.ino] = m
	return nil
}

// lookupNoMount resolves p strictly within this file system: crossing an
// intermediate mount point is an error and a final mount point resolves
// to the local directory underneath it. Symlinks are not followed. Used
// by Mount and Unmount, whose targets must be local. Caller holds fs.mu.
func (fs *MemFS) lookupNoMount(p string) (*node, error) {
	clean, err := Clean(p)
	if err != nil {
		return nil, err
	}
	cur := fs.root
	for _, c := range components(clean) {
		if _, ok := fs.mounts[cur.ino]; ok {
			return nil, ErrCrossMount
		}
		if !cur.isDir() {
			return nil, ErrNotDir
		}
		next, ok := cur.children[c]
		if !ok {
			return nil, ErrNotExist
		}
		cur = next
	}
	return cur, nil
}

// Unmount detaches the file system mounted at p.
func (fs *MemFS) Unmount(p string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	n, err := fs.lookupNoMount(p)
	if err != nil {
		return pe("unmount", p, err)
	}
	if _, ok := fs.mounts[n.ino]; !ok {
		return pe("unmount", p, ErrInvalid)
	}
	delete(fs.mounts, n.ino)
	return nil
}

// MountPoints returns the paths of all current mount points, sorted.
func (fs *MemFS) MountPoints() []string {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	var out []string
	var visit func(n *node)
	visit = func(n *node) {
		if _, ok := fs.mounts[n.ino]; ok {
			out = append(out, n.path())
			return
		}
		for _, c := range n.children {
			if c.isDir() {
				visit(c)
			}
		}
	}
	visit(fs.root)
	sort.Strings(out)
	return out
}

// MetadataBytes estimates the in-memory footprint of the file system's
// metadata (not file contents), for the space-overhead experiment.
func (fs *MemFS) MetadataBytes() int {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	total := 0
	var visit func(n *node)
	visit = func(n *node) {
		// A node costs its struct (~120 bytes) plus its name and, for
		// symlinks, the target string; directories pay per-entry map
		// overhead (~48 bytes each).
		total += 120 + len(n.name) + len(n.target)
		if n.isDir() {
			total += 48 * len(n.children)
			for _, c := range n.children {
				visit(c)
			}
		}
	}
	visit(fs.root)
	return total
}
