package vfs

import (
	"errors"
	"math/rand"
	"sort"
	"sync"
	"time"
)

// Fault-injection sentinels, comparable with errors.Is.
var (
	// ErrInjected marks an artificial I/O failure produced by a FaultFS.
	ErrInjected = errors.New("injected fault")
	// ErrCrashed is returned by every operation issued to a FaultFS
	// after its crash point fired, until Restart is called.
	ErrCrashed = errors.New("file system crashed")
)

// FaultConfig describes the faults a FaultFS injects. The zero value
// injects nothing, so a FaultFS over a healthy substrate behaves
// exactly like the substrate.
type FaultConfig struct {
	// Seed initializes the deterministic fault stream. Two FaultFS
	// instances with the same seed, config and operation sequence
	// inject faults at the same points.
	Seed int64
	// ErrorRate is the probability, per counted operation, of failing
	// with ErrInjected before the substrate is touched.
	ErrorRate float64
	// OpErrorRates overrides ErrorRate for individual operations,
	// keyed by the op name recorded in the counters ("write",
	// "remove", "symlink", ...).
	OpErrorRates map[string]float64
	// CrashAtOp freezes the store when the running operation count
	// reaches this value: the operation at the crash point and every
	// later one fail with ErrCrashed. 0 means never.
	CrashAtOp uint64
	// TornWrites makes a WriteFile that lands exactly on the crash
	// point commit a prefix of its data before failing, simulating a
	// torn write at power loss.
	TornWrites bool
	// Latency is added to every counted operation, for tests that
	// need slow-storage interleavings.
	Latency time.Duration
}

// FaultStats is a snapshot of a FaultFS's operation counters.
type FaultStats struct {
	Ops      uint64            // operations counted (pre-crash)
	Injected uint64            // operations failed with ErrInjected
	Rejected uint64            // operations refused with ErrCrashed
	Crashes  uint64            // times the crash point fired
	PerOp    map[string]uint64 // counted operations by name
	Errors   map[string]uint64 // injected failures by name
}

// FaultFS wraps a FileSystem and injects deterministic, seed-driven
// faults beneath any layer built on top of it: per-operation error
// rates, an operation-count crash point that freezes the store
// mid-sequence, torn writes at the crash point, and latency. It is the
// test substrate for crash-safety and consistency-recovery tests; see
// DESIGN.md §8.
//
// FaultFS implements FileSystem and, when its substrate does,
// Snapshotter — so a HAC volume over a FaultFS can still be saved.
type FaultFS struct {
	under FileSystem

	mu      sync.Mutex
	rng     *rand.Rand
	cfg     FaultConfig
	crashed bool
	stats   FaultStats
}

var _ FileSystem = (*FaultFS)(nil)
var _ Snapshotter = (*FaultFS)(nil)

// NewFaultFS wraps under with fault injection configured by cfg.
func NewFaultFS(under FileSystem, cfg FaultConfig) *FaultFS {
	return &FaultFS{
		under: under,
		rng:   rand.New(rand.NewSource(cfg.Seed)),
		cfg:   cfg,
	}
}

// Under returns the wrapped substrate.
func (fs *FaultFS) Under() FileSystem { return fs.under }

// SetErrorRate changes the global per-operation error rate.
func (fs *FaultFS) SetErrorRate(rate float64) {
	fs.mu.Lock()
	fs.cfg.ErrorRate = rate
	fs.mu.Unlock()
}

// SetOpErrorRate overrides the error rate for one operation name.
func (fs *FaultFS) SetOpErrorRate(op string, rate float64) {
	fs.mu.Lock()
	if fs.cfg.OpErrorRates == nil {
		fs.cfg.OpErrorRates = make(map[string]float64)
	}
	fs.cfg.OpErrorRates[op] = rate
	fs.mu.Unlock()
}

// CrashAfter schedules the crash point n counted operations from now
// (n = 1 crashes the very next operation).
func (fs *FaultFS) CrashAfter(n uint64) {
	fs.mu.Lock()
	fs.cfg.CrashAtOp = fs.stats.Ops + n
	fs.mu.Unlock()
}

// Crashed reports whether the crash point has fired.
func (fs *FaultFS) Crashed() bool {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.crashed
}

// Restart clears the crashed state ("power back on"): the store keeps
// whatever the substrate committed before the crash, and no further
// crash point is armed until CrashAfter is called again.
func (fs *FaultFS) Restart() {
	fs.mu.Lock()
	fs.crashed = false
	fs.cfg.CrashAtOp = 0
	fs.mu.Unlock()
}

// Stats returns a snapshot of the fault counters.
func (fs *FaultFS) Stats() FaultStats {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	s := fs.stats
	s.PerOp = make(map[string]uint64, len(fs.stats.PerOp))
	for k, v := range fs.stats.PerOp {
		s.PerOp[k] = v
	}
	s.Errors = make(map[string]uint64, len(fs.stats.Errors))
	for k, v := range fs.stats.Errors {
		s.Errors[k] = v
	}
	return s
}

// OpNames returns the operation names seen so far, sorted — handy for
// assertions over the per-op counters.
func (fs *FaultFS) OpNames() []string {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	names := make([]string, 0, len(fs.stats.PerOp))
	for k := range fs.stats.PerOp {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// begin counts one operation and decides its fate: nil to proceed to
// the substrate, or an injected error. atCrash reports that this very
// operation tripped the crash point (for torn-write handling).
func (fs *FaultFS) begin(op, path string) (err error, atCrash bool) {
	fs.mu.Lock()
	latency := fs.cfg.Latency
	if fs.crashed {
		fs.stats.Rejected++
		fs.mu.Unlock()
		return pe(op, path, ErrCrashed), false
	}
	fs.stats.Ops++
	if fs.stats.PerOp == nil {
		fs.stats.PerOp = make(map[string]uint64)
	}
	fs.stats.PerOp[op]++
	if fs.cfg.CrashAtOp > 0 && fs.stats.Ops >= fs.cfg.CrashAtOp {
		fs.crashed = true
		fs.stats.Crashes++
		fs.mu.Unlock()
		return pe(op, path, ErrCrashed), true
	}
	rate := fs.cfg.ErrorRate
	if r, ok := fs.cfg.OpErrorRates[op]; ok {
		rate = r
	}
	if rate > 0 && fs.rng.Float64() < rate {
		fs.stats.Injected++
		if fs.stats.Errors == nil {
			fs.stats.Errors = make(map[string]uint64)
		}
		fs.stats.Errors[op]++
		fs.mu.Unlock()
		if latency > 0 {
			time.Sleep(latency)
		}
		return pe(op, path, ErrInjected), false
	}
	fs.mu.Unlock()
	if latency > 0 {
		time.Sleep(latency)
	}
	return nil, false
}

// tornLen picks how much of a torn write survives: a strict prefix of
// the data (possibly empty).
func (fs *FaultFS) tornLen(n int) int {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if n == 0 {
		return 0
	}
	return fs.rng.Intn(n)
}

func (fs *FaultFS) Mkdir(path string) error {
	if err, _ := fs.begin("mkdir", path); err != nil {
		return err
	}
	return fs.under.Mkdir(path)
}

func (fs *FaultFS) MkdirAll(path string) error {
	if err, _ := fs.begin("mkdirall", path); err != nil {
		return err
	}
	return fs.under.MkdirAll(path)
}

func (fs *FaultFS) Create(path string) (File, error) {
	return fs.OpenFile(path, ORead|OWrite|OCreate|OTrunc)
}

func (fs *FaultFS) Open(path string) (File, error) {
	return fs.OpenFile(path, ORead)
}

func (fs *FaultFS) OpenFile(path string, flag int) (File, error) {
	if err, _ := fs.begin("open", path); err != nil {
		return nil, err
	}
	f, err := fs.under.OpenFile(path, flag)
	if err != nil {
		return nil, err
	}
	return &faultFile{File: f, fs: fs}, nil
}

func (fs *FaultFS) ReadFile(path string) ([]byte, error) {
	if err, _ := fs.begin("read", path); err != nil {
		return nil, err
	}
	return fs.under.ReadFile(path)
}

func (fs *FaultFS) WriteFile(path string, data []byte) error {
	err, atCrash := fs.begin("write", path)
	if err != nil {
		if atCrash && fs.cfg.TornWrites {
			// The crash interrupted the write mid-stream: a prefix of
			// the data reaches the store.
			_ = fs.under.WriteFile(path, data[:fs.tornLen(len(data))])
		}
		return err
	}
	return fs.under.WriteFile(path, data)
}

func (fs *FaultFS) Symlink(target, link string) error {
	if err, _ := fs.begin("symlink", link); err != nil {
		return err
	}
	return fs.under.Symlink(target, link)
}

func (fs *FaultFS) Readlink(path string) (string, error) {
	if err, _ := fs.begin("readlink", path); err != nil {
		return "", err
	}
	return fs.under.Readlink(path)
}

func (fs *FaultFS) Remove(path string) error {
	if err, _ := fs.begin("remove", path); err != nil {
		return err
	}
	return fs.under.Remove(path)
}

func (fs *FaultFS) RemoveAll(path string) error {
	if err, _ := fs.begin("removeall", path); err != nil {
		return err
	}
	return fs.under.RemoveAll(path)
}

func (fs *FaultFS) Rename(oldPath, newPath string) error {
	if err, _ := fs.begin("rename", oldPath); err != nil {
		return err
	}
	return fs.under.Rename(oldPath, newPath)
}

func (fs *FaultFS) Stat(path string) (Info, error) {
	if err, _ := fs.begin("stat", path); err != nil {
		return Info{}, err
	}
	return fs.under.Stat(path)
}

func (fs *FaultFS) Lstat(path string) (Info, error) {
	if err, _ := fs.begin("lstat", path); err != nil {
		return Info{}, err
	}
	return fs.under.Lstat(path)
}

func (fs *FaultFS) ReadDir(path string) ([]DirEntry, error) {
	if err, _ := fs.begin("readdir", path); err != nil {
		return nil, err
	}
	return fs.under.ReadDir(path)
}

// Snapshot delegates to the substrate when it can snapshot itself, so
// volume saves work through the fault layer. A substrate that cannot
// snapshot yields nil, which savers must reject.
func (fs *FaultFS) Snapshot() []SnapNode {
	if s, ok := fs.under.(Snapshotter); ok {
		return s.Snapshot()
	}
	return nil
}

// faultFile passes handle I/O through the fault layer, so reads and
// writes on open handles are also counted, injected and frozen.
type faultFile struct {
	File
	fs *FaultFS
}

func (f *faultFile) Read(p []byte) (int, error) {
	if err, _ := f.fs.begin("fread", f.Name()); err != nil {
		return 0, err
	}
	return f.File.Read(p)
}

func (f *faultFile) ReadAt(p []byte, off int64) (int, error) {
	if err, _ := f.fs.begin("fread", f.Name()); err != nil {
		return 0, err
	}
	return f.File.ReadAt(p, off)
}

func (f *faultFile) Write(p []byte) (int, error) {
	err, atCrash := f.fs.begin("fwrite", f.Name())
	if err != nil {
		if atCrash && f.fs.cfg.TornWrites {
			n := f.fs.tornLen(len(p))
			_, _ = f.File.Write(p[:n])
		}
		return 0, err
	}
	return f.File.Write(p)
}

func (f *faultFile) WriteAt(p []byte, off int64) (int, error) {
	if err, _ := f.fs.begin("fwrite", f.Name()); err != nil {
		return 0, err
	}
	return f.File.WriteAt(p, off)
}

func (f *faultFile) Truncate(size int64) error {
	if err, _ := f.fs.begin("ftruncate", f.Name()); err != nil {
		return err
	}
	return f.File.Truncate(size)
}

// CrashWriter simulates a crash in the middle of writing a byte
// stream: the first Limit bytes reach W, then every write fails with
// ErrCrashed. It turns any saver into a torn-image generator for
// recovery tests.
type CrashWriter struct {
	W     interface{ Write([]byte) (int, error) }
	Limit int
	n     int
}

func (c *CrashWriter) Write(p []byte) (int, error) {
	remain := c.Limit - c.n
	if remain <= 0 {
		return 0, ErrCrashed
	}
	if len(p) <= remain {
		n, err := c.W.Write(p)
		c.n += n
		return n, err
	}
	n, err := c.W.Write(p[:remain])
	c.n += n
	if err != nil {
		return n, err
	}
	return n, ErrCrashed
}
