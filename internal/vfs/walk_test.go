package vfs

import (
	"errors"
	"reflect"
	"testing"
	"testing/quick"
)

func buildTree(t *testing.T) *MemFS {
	t.Helper()
	fs := New()
	mustMkdirAll(t, fs, "/a/b")
	mustMkdirAll(t, fs, "/a/c")
	mustWrite(t, fs, "/a/b/f1", "1")
	mustWrite(t, fs, "/a/b/f2", "22")
	mustWrite(t, fs, "/a/c/f3", "333")
	mustWrite(t, fs, "/top", "t")
	if err := fs.Symlink("/a/b/f1", "/a/link"); err != nil {
		t.Fatal(err)
	}
	return fs
}

func TestWalkOrderAndCompleteness(t *testing.T) {
	fs := buildTree(t)
	var visited []string
	err := Walk(fs, "/", func(p string, info Info) error {
		visited = append(visited, p)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"/", "/a", "/a/b", "/a/b/f1", "/a/b/f2", "/a/c", "/a/c/f3", "/a/link", "/top"}
	if !reflect.DeepEqual(visited, want) {
		t.Fatalf("Walk order = %v, want %v", visited, want)
	}
}

func TestWalkSkipDir(t *testing.T) {
	fs := buildTree(t)
	var visited []string
	err := Walk(fs, "/", func(p string, info Info) error {
		visited = append(visited, p)
		if p == "/a/b" {
			return SkipDir
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range visited {
		if p == "/a/b/f1" || p == "/a/b/f2" {
			t.Fatalf("SkipDir did not skip %s", p)
		}
	}
}

func TestWalkErrorPropagates(t *testing.T) {
	fs := buildTree(t)
	boom := errors.New("boom")
	err := Walk(fs, "/", func(p string, info Info) error {
		if p == "/a/c" {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("Walk err = %v, want boom", err)
	}
}

func TestWalkDoesNotFollowSymlinks(t *testing.T) {
	fs := New()
	mustMkdirAll(t, fs, "/d")
	// Self-referential directory loop via symlink.
	if err := fs.Symlink("/d", "/d/self"); err != nil {
		t.Fatal(err)
	}
	count := 0
	err := Walk(fs, "/", func(p string, info Info) error {
		count++
		if count > 100 {
			return errors.New("walk followed symlink loop")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFiles(t *testing.T) {
	fs := buildTree(t)
	files, err := Files(fs, "/")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"/a/b/f1", "/a/b/f2", "/a/c/f3", "/top"}
	if !reflect.DeepEqual(files, want) {
		t.Fatalf("Files = %v, want %v", files, want)
	}
	sub, err := Files(fs, "/a/c")
	if err != nil || len(sub) != 1 || sub[0] != "/a/c/f3" {
		t.Fatalf("Files(/a/c) = %v, %v", sub, err)
	}
}

func TestCopyTree(t *testing.T) {
	src := buildTree(t)
	dst := New()
	mustMkdirAll(t, dst, "/copy")
	if err := CopyTree(src, "/a", dst, "/copy"); err != nil {
		t.Fatal(err)
	}
	data, err := dst.ReadFile("/copy/b/f2")
	if err != nil || string(data) != "22" {
		t.Fatalf("copied file = %q, %v", data, err)
	}
	target, err := dst.Readlink("/copy/link")
	if err != nil || target != "/a/b/f1" {
		t.Fatalf("copied symlink = %q, %v", target, err)
	}
}

// Property: for any sequence of file creations under distinct generated
// paths, Files returns exactly the created set.
func TestPropertyFilesMatchesCreations(t *testing.T) {
	f := func(names []uint8) bool {
		fs := New()
		created := map[string]bool{}
		for i, n := range names {
			dir := "/d" + string(rune('a'+int(n)%4))
			if fs.MkdirAll(dir) != nil {
				return false
			}
			p := Join(dir, "f"+string(rune('a'+i%26))+string(rune('0'+i/26%10)))
			if fs.WriteFile(p, []byte{n}) != nil {
				return false
			}
			created[p] = true
		}
		files, err := Files(fs, "/")
		if err != nil {
			return false
		}
		if len(files) != len(created) {
			return false
		}
		for _, p := range files {
			if !created[p] {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 50}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestHasPrefix(t *testing.T) {
	cases := []struct {
		p, dir string
		want   bool
	}{
		{"/a/b", "/a", true},
		{"/a", "/a", true},
		{"/ab", "/a", false},
		{"/a/b", "/", true},
		{"/", "/", true},
		{"/x", "/a", false},
	}
	for _, c := range cases {
		if got := HasPrefix(c.p, c.dir); got != c.want {
			t.Errorf("HasPrefix(%q, %q) = %v, want %v", c.p, c.dir, got, c.want)
		}
	}
}

func TestSplit(t *testing.T) {
	cases := []struct {
		in, dir, base string
	}{
		{"/a/b/c", "/a/b", "c"},
		{"/a", "/", "a"},
		{"/", "/", ""},
		{"/a/b/", "/a", "b"},
	}
	for _, c := range cases {
		dir, base := Split(c.in)
		if dir != c.dir || base != c.base {
			t.Errorf("Split(%q) = (%q, %q), want (%q, %q)", c.in, dir, base, c.dir, c.base)
		}
	}
}
