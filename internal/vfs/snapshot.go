package vfs

import (
	"encoding/gob"
	"fmt"
	"io"
	"sort"
	"time"
)

// SnapNode is one object in a serialized file system image. Nodes are
// ordered parents-before-children so a snapshot can be replayed
// directly.
type SnapNode struct {
	Path    string
	Type    NodeType
	Data    []byte // files
	Target  string // symlinks
	ModTime time.Time
}

// Snapshotter is a file system that can capture its entire tree as an
// ordered node list. MemFS implements it natively; wrapping layers
// (such as FaultFS) delegate to their substrate. Savers that need a
// snapshot — hac.SaveVolume in particular — accept any Snapshotter
// rather than a concrete substrate type, and must treat a nil or empty
// snapshot as "substrate cannot snapshot".
type Snapshotter interface {
	Snapshot() []SnapNode
}

const snapshotVersion = 1

type snapshotHeader struct {
	Version int
	Nodes   int
}

// Snapshot captures the entire tree (excluding the contents of mounted
// file systems; the mount points appear as ordinary directories).
// Inode numbers are not part of the image and are reassigned on
// restore.
func (fs *MemFS) Snapshot() []SnapNode {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	var out []SnapNode
	var visit func(n *node)
	visit = func(n *node) {
		sn := SnapNode{Path: n.path(), Type: n.typ, Target: n.target, ModTime: n.modTime}
		if n.typ == TypeFile {
			sn.Data = make([]byte, len(n.data))
			copy(sn.Data, n.data)
		}
		out = append(out, sn)
		if !n.isDir() {
			return
		}
		if _, mounted := fs.mounts[n.ino]; mounted {
			return // do not descend into foreign file systems
		}
		names := make([]string, 0, len(n.children))
		for name := range n.children {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			visit(n.children[name])
		}
	}
	visit(fs.root)
	return out
}

// FromSnapshot builds a file system from a snapshot. The first node
// must be the root directory.
func FromSnapshot(nodes []SnapNode) (*MemFS, error) {
	fs := New()
	for i, sn := range nodes {
		if i == 0 {
			if sn.Path != "/" || sn.Type != TypeDir {
				return nil, fmt.Errorf("vfs: snapshot does not start at the root (got %q)", sn.Path)
			}
			continue
		}
		var err error
		switch sn.Type {
		case TypeDir:
			err = fs.Mkdir(sn.Path)
		case TypeSymlink:
			err = fs.Symlink(sn.Target, sn.Path)
		case TypeFile:
			err = fs.WriteFile(sn.Path, sn.Data)
		default:
			err = fmt.Errorf("vfs: snapshot node %q has unknown type %d", sn.Path, sn.Type)
		}
		if err != nil {
			return nil, fmt.Errorf("vfs: restoring %q: %w", sn.Path, err)
		}
	}
	// Second pass: restore modification times (creation above bumped
	// parent mtimes).
	fs.mu.Lock()
	defer fs.mu.Unlock()
	for _, sn := range nodes {
		if t, err := fs.walk(sn.Path, false); err == nil && t.n != nil {
			t.n.modTime = sn.ModTime
		}
	}
	return fs, nil
}

// Save writes a portable snapshot of the file system to w.
func (fs *MemFS) Save(w io.Writer) error {
	nodes := fs.Snapshot()
	enc := gob.NewEncoder(w)
	if err := enc.Encode(snapshotHeader{Version: snapshotVersion, Nodes: len(nodes)}); err != nil {
		return fmt.Errorf("vfs: encoding snapshot header: %w", err)
	}
	for i := range nodes {
		if err := enc.Encode(&nodes[i]); err != nil {
			return fmt.Errorf("vfs: encoding snapshot node %q: %w", nodes[i].Path, err)
		}
	}
	return nil
}

// Load reads a snapshot written by Save and reconstructs the file
// system.
func Load(r io.Reader) (*MemFS, error) {
	dec := gob.NewDecoder(r)
	var hdr snapshotHeader
	if err := dec.Decode(&hdr); err != nil {
		return nil, fmt.Errorf("vfs: decoding snapshot header: %w", err)
	}
	if hdr.Version != snapshotVersion {
		return nil, fmt.Errorf("vfs: unsupported snapshot version %d", hdr.Version)
	}
	nodes := make([]SnapNode, hdr.Nodes)
	for i := range nodes {
		if err := dec.Decode(&nodes[i]); err != nil {
			return nil, fmt.Errorf("vfs: decoding snapshot node %d: %w", i, err)
		}
	}
	return FromSnapshot(nodes)
}
