// Package vfs implements the hierarchical file system substrate that HAC
// is layered on. The paper built HAC as a user-level library over SunOS;
// here the role of SunOS is played by MemFS, an in-memory POSIX-like
// tree with directories, regular files, symbolic links, rename, and
// syntactic mount points.
//
// Everything above this package talks to the FileSystem interface, so
// the raw substrate ("UNIX" in the paper's tables), the HAC layer, and
// the Jade/Pseudo baseline layers are interchangeable under the Andrew
// benchmark.
//
// All paths are absolute, slash-separated, and interpreted relative to
// the file system root; callers that need a working directory (such as
// the hacsh shell) join it before calling in.
package vfs

import (
	"errors"
	"fmt"
	"io"
	"time"
)

// NodeType distinguishes the three kinds of file system objects.
type NodeType uint8

// The node types.
const (
	TypeFile NodeType = iota
	TypeDir
	TypeSymlink
)

// String returns a short human-readable type name.
func (t NodeType) String() string {
	switch t {
	case TypeFile:
		return "file"
	case TypeDir:
		return "dir"
	case TypeSymlink:
		return "symlink"
	default:
		return fmt.Sprintf("NodeType(%d)", uint8(t))
	}
}

// Sentinel errors, comparable with errors.Is.
var (
	ErrNotExist    = errors.New("file does not exist")
	ErrExist       = errors.New("file already exists")
	ErrNotDir      = errors.New("not a directory")
	ErrIsDir       = errors.New("is a directory")
	ErrNotEmpty    = errors.New("directory not empty")
	ErrInvalid     = errors.New("invalid argument")
	ErrLoop        = errors.New("too many levels of symbolic links")
	ErrCrossMount  = errors.New("operation crosses a mount point")
	ErrClosed      = errors.New("file already closed")
	ErrReadOnly    = errors.New("file handle not open for writing")
	ErrWriteOnly   = errors.New("file handle not open for reading")
	ErrBusy        = errors.New("resource busy")
	ErrUnsupported = errors.New("operation not supported")
	// ErrQuotaExceeded rejects a write that would push a tenant's volume
	// past its configured byte or document quota (DESIGN.md §12). The
	// serving layer wraps it in a *PathError naming the write.
	ErrQuotaExceeded = errors.New("tenant quota exceeded")
	// ErrBackpressure rejects a request at admission because the tenant
	// already has its configured maximum of requests in flight; clients
	// should back off and retry.
	ErrBackpressure = errors.New("tenant over in-flight limit, retry later")
	// ErrShuttingDown rejects a request admitted while the server drains
	// for shutdown.
	ErrShuttingDown = errors.New("server shutting down")
	// ErrCorruptVolume marks a persisted image — a volume, an index, or
	// one index segment block — that is truncated, bit-flipped,
	// version-skewed or otherwise undecodable. It lives here so both the
	// hac and index layers can wrap the same sentinel without an import
	// cycle; hac.ErrCorruptVolume aliases it.
	ErrCorruptVolume = errors.New("corrupt volume image")
	// ErrShardUnavailable marks a cluster operation that could not reach
	// any replica of a required index shard (DESIGN.md §14). The
	// coordinator wraps it in a *PathError naming the shard; a search run
	// in partial-result mode suppresses it and annotates the plan
	// instead.
	ErrShardUnavailable = errors.New("index shard unavailable")
)

// PathError records the operation and path that caused an error, in the
// style of os.PathError.
type PathError struct {
	Op   string
	Path string
	Err  error
}

func (e *PathError) Error() string { return e.Op + " " + e.Path + ": " + e.Err.Error() }

// Unwrap supports errors.Is on the underlying sentinel.
func (e *PathError) Unwrap() error { return e.Err }

func pe(op, path string, err error) error { return &PathError{Op: op, Path: path, Err: err} }

// Info describes a file system object, as returned by Stat and Lstat.
type Info struct {
	Name    string    // base name
	Ino     uint64    // stable node identifier, unique within one MemFS
	Type    NodeType  // file, dir or symlink
	Size    int64     // content length for files, 0 otherwise
	ModTime time.Time // last modification time
	Target  string    // symlink target (Lstat only)
}

// IsDir reports whether the object is a directory.
func (i Info) IsDir() bool { return i.Type == TypeDir }

// DirEntry is one entry of a directory listing.
type DirEntry struct {
	Name string
	Type NodeType
	Ino  uint64
}

// File is an open file handle. Handles are not safe for concurrent use;
// the file system underneath is.
type File interface {
	io.Reader
	io.Writer
	io.Seeker
	io.Closer
	io.ReaderAt
	io.WriterAt
	// Truncate changes the file size.
	Truncate(size int64) error
	// Name returns the path the file was opened with.
	Name() string
	// Stat returns current metadata for the open file.
	Stat() (Info, error)
}

// Open flags, a minimal POSIX-like subset.
const (
	ORead   = 1 << iota // open for reading
	OWrite              // open for writing
	OCreate             // create if missing
	OTrunc              // truncate on open
	OAppend             // writes always append
	OExcl               // with OCreate: fail if the file exists
)

// FileSystem is the operation set shared by the raw substrate, the HAC
// layer and the baseline layers. It is deliberately the surface the
// paper's HAC library interposes on.
type FileSystem interface {
	Mkdir(path string) error
	MkdirAll(path string) error
	Create(path string) (File, error)
	Open(path string) (File, error)
	OpenFile(path string, flag int) (File, error)
	ReadFile(path string) ([]byte, error)
	WriteFile(path string, data []byte) error
	Symlink(target, link string) error
	Readlink(path string) (string, error)
	Remove(path string) error
	RemoveAll(path string) error
	Rename(oldPath, newPath string) error
	Stat(path string) (Info, error)
	Lstat(path string) (Info, error)
	ReadDir(path string) ([]DirEntry, error)
}

// node is one object in the tree. Access is guarded by the owning
// MemFS's mutex.
type node struct {
	ino     uint64
	typ     NodeType
	name    string
	parent  *node
	modTime time.Time

	children map[string]*node // directories
	data     []byte           // regular files
	target   string           // symlinks
}

func (n *node) isDir() bool { return n.typ == TypeDir }

func (n *node) info() Info {
	inf := Info{
		Name:    n.name,
		Ino:     n.ino,
		Type:    n.typ,
		ModTime: n.modTime,
	}
	switch n.typ {
	case TypeFile:
		inf.Size = int64(len(n.data))
	case TypeSymlink:
		inf.Target = n.target
	}
	return inf
}

// path reconstructs the absolute path of n by walking parents.
func (n *node) path() string {
	if n.parent == nil {
		return "/"
	}
	var parts []string
	for cur := n; cur.parent != nil; cur = cur.parent {
		parts = append(parts, cur.name)
	}
	buf := make([]byte, 0, 64)
	for i := len(parts) - 1; i >= 0; i-- {
		buf = append(buf, '/')
		buf = append(buf, parts[i]...)
	}
	return string(buf)
}
