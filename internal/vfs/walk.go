package vfs

import (
	"errors"
	"sort"
)

// SkipDir can be returned by a WalkFunc to skip the current directory's
// contents.
var SkipDir = errors.New("skip this directory")

// WalkFunc is called once per visited object. Symlinks are reported but
// never followed, so walks terminate even on cyclic link structures.
type WalkFunc func(path string, info Info) error

// Walk traverses the tree rooted at root in depth-first, name-sorted
// order, calling fn for every object including root itself. It works on
// any FileSystem, crossing syntactic mount points transparently
// (ReadDir on a mount point lists the mounted file system).
func Walk(fsys FileSystem, root string, fn WalkFunc) error {
	info, err := fsys.Lstat(root)
	if err != nil {
		return err
	}
	return walk(fsys, root, info, fn)
}

func walk(fsys FileSystem, p string, info Info, fn WalkFunc) error {
	err := fn(p, info)
	if err == SkipDir {
		return nil
	}
	if err != nil {
		return err
	}
	if info.Type != TypeDir {
		return nil
	}
	entries, err := fsys.ReadDir(p)
	if err != nil {
		return err
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].Name < entries[j].Name })
	for _, e := range entries {
		child := Join(p, e.Name)
		ci, err := fsys.Lstat(child)
		if errors.Is(err, ErrNotExist) {
			// Entry vanished between ReadDir and Lstat; skip it.
			continue
		}
		if err != nil {
			// Any other failure must surface: a walk that silently
			// omits an existing entry makes incremental consumers
			// (index.SyncTree) treat the entry as deleted.
			return err
		}
		if err := walk(fsys, child, ci, fn); err != nil {
			return err
		}
	}
	return nil
}

// Files returns the paths of all regular files under root, sorted.
func Files(fsys FileSystem, root string) ([]string, error) {
	var out []string
	err := Walk(fsys, root, func(p string, info Info) error {
		if info.Type == TypeFile {
			out = append(out, p)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(out)
	return out, nil
}

// CopyFile copies one file's contents within or across file systems.
func CopyFile(src FileSystem, srcPath string, dst FileSystem, dstPath string) error {
	data, err := src.ReadFile(srcPath)
	if err != nil {
		return err
	}
	return dst.WriteFile(dstPath, data)
}

// CopyTree replicates the tree rooted at srcPath in src under dstPath in
// dst, copying directories, files, and symlinks (targets verbatim).
func CopyTree(src FileSystem, srcPath string, dst FileSystem, dstPath string) error {
	return Walk(src, srcPath, func(p string, info Info) error {
		rel := p[len(srcPath):]
		target := Join(dstPath, rel)
		switch info.Type {
		case TypeDir:
			return dst.MkdirAll(target)
		case TypeSymlink:
			link, err := src.Readlink(p)
			if err != nil {
				return err
			}
			return dst.Symlink(link, target)
		default:
			return CopyFile(src, p, dst, target)
		}
	})
}
