package vfs

import "sync/atomic"

// Stats counts file system operations; used by the benchmark harness to
// verify that the same workload issues the same operation mix against
// the substrate and the layered file systems.
type Stats struct {
	Mkdirs   atomic.Int64
	Opens    atomic.Int64
	Reads    atomic.Int64
	Writes   atomic.Int64
	Stats    atomic.Int64
	ReadDirs atomic.Int64
	Removes  atomic.Int64
	Renames  atomic.Int64
	Symlinks atomic.Int64
}

// StatsSnapshot is a point-in-time copy of the counters.
type StatsSnapshot struct {
	Mkdirs   int64
	Opens    int64
	Reads    int64
	Writes   int64
	Stats    int64
	ReadDirs int64
	Removes  int64
	Renames  int64
	Symlinks int64
}

// Snapshot returns a point-in-time copy of the counters. Exported so
// substrates outside this package (cas.FS) can embed Stats and expose
// the same counter surface.
func (s *Stats) Snapshot() StatsSnapshot { return s.snapshot() }

func (s *Stats) snapshot() StatsSnapshot {
	return StatsSnapshot{
		Mkdirs:   s.Mkdirs.Load(),
		Opens:    s.Opens.Load(),
		Reads:    s.Reads.Load(),
		Writes:   s.Writes.Load(),
		Stats:    s.Stats.Load(),
		ReadDirs: s.ReadDirs.Load(),
		Removes:  s.Removes.Load(),
		Renames:  s.Renames.Load(),
		Symlinks: s.Symlinks.Load(),
	}
}

// Total returns the sum of all counters.
func (s StatsSnapshot) Total() int64 {
	return s.Mkdirs + s.Opens + s.Reads + s.Writes + s.Stats +
		s.ReadDirs + s.Removes + s.Renames + s.Symlinks
}
