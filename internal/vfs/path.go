package vfs

import (
	gopath "path"
	"strings"
)

// Clean normalizes p to an absolute, slash-separated path with no "."
// or ".." components. It returns ErrInvalid for relative or empty paths.
func Clean(p string) (string, error) {
	if p == "" || p[0] != '/' {
		return "", ErrInvalid
	}
	return gopath.Clean(p), nil
}

// Split returns the directory and base of p, both cleaned. For the root
// it returns ("/", "").
func Split(p string) (dir, base string) {
	p = gopath.Clean(p)
	if p == "/" {
		return "/", ""
	}
	dir, base = gopath.Split(p)
	return gopath.Clean(dir), base
}

// Join joins elements into a cleaned slash path.
func Join(elem ...string) string { return gopath.Join(elem...) }

// Base returns the last element of p.
func Base(p string) string { return gopath.Base(p) }

// Dir returns all but the last element of p.
func Dir(p string) string { return gopath.Dir(p) }

// components splits a cleaned absolute path into its path elements.
// components("/") is the empty slice.
func components(p string) []string {
	p = strings.Trim(p, "/")
	if p == "" {
		return nil
	}
	return strings.Split(p, "/")
}

// IsAbs reports whether p is an absolute slash path.
func IsAbs(p string) bool { return len(p) > 0 && p[0] == '/' }

// HasPrefix reports whether path p is inside (or equal to) dir, in the
// path-component sense: HasPrefix("/a/bc", "/a/b") is false.
func HasPrefix(p, dir string) bool {
	p = gopath.Clean(p)
	dir = gopath.Clean(dir)
	if dir == "/" {
		return true
	}
	return p == dir || strings.HasPrefix(p, dir+"/")
}
