package vfs

import (
	"reflect"
	"testing"
)

func globTree(t *testing.T) *MemFS {
	t.Helper()
	fs := New()
	for _, p := range []string{
		"/docs/a1.txt", "/docs/a2.txt", "/docs/b.md",
		"/mail/m1.eml", "/mail/m2.eml",
		"/src/main.c", "/src/util.c", "/src/util.h",
	} {
		mustMkdirAll(t, fs, Dir(p))
		mustWrite(t, fs, p, "x")
	}
	return fs
}

func TestGlob(t *testing.T) {
	fs := globTree(t)
	cases := []struct {
		pattern string
		want    []string
	}{
		{"/docs/*.txt", []string{"/docs/a1.txt", "/docs/a2.txt"}},
		{"/docs/a?.txt", []string{"/docs/a1.txt", "/docs/a2.txt"}},
		{"/*/m*.eml", []string{"/mail/m1.eml", "/mail/m2.eml"}},
		{"/src/util.[ch]", []string{"/src/util.c", "/src/util.h"}},
		{"/docs/b.md", []string{"/docs/b.md"}},
		{"/missing/*.x", nil},
		{"/docs/*.pdf", nil},
		{"/*", []string{"/docs", "/mail", "/src"}},
	}
	for _, c := range cases {
		got, err := Glob(fs, c.pattern)
		if err != nil {
			t.Fatalf("Glob(%q): %v", c.pattern, err)
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("Glob(%q) = %v, want %v", c.pattern, got, c.want)
		}
	}
}

func TestGlobLiteralMissing(t *testing.T) {
	fs := globTree(t)
	got, err := Glob(fs, "/docs/none.txt")
	if err != nil || got != nil {
		t.Fatalf("Glob literal missing = %v, %v", got, err)
	}
}

func TestGlobBadPattern(t *testing.T) {
	fs := globTree(t)
	if _, err := Glob(fs, "/docs/[unclosed"); err == nil {
		t.Fatal("bad pattern accepted")
	}
	if _, err := Glob(fs, "relative/*"); err == nil {
		t.Fatal("relative pattern accepted")
	}
}

func TestGlobDoesNotFollowSymlinks(t *testing.T) {
	fs := globTree(t)
	if err := fs.Symlink("/docs", "/alias"); err != nil {
		t.Fatal(err)
	}
	// The symlink itself matches by name...
	got, _ := Glob(fs, "/ali*")
	if len(got) != 1 || got[0] != "/alias" {
		t.Fatalf("Glob symlink name = %v", got)
	}
}
