package shell

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// lineReader yields input lines without their terminators.
type lineReader struct {
	r *bufio.Reader
}

func newLineReader(r io.Reader) *lineReader {
	return &lineReader{r: bufio.NewReader(r)}
}

// next returns the next line, or io.EOF when input is exhausted.
func (lr *lineReader) next() (string, error) {
	line, err := lr.r.ReadString('\n')
	if err == io.EOF && line != "" {
		return strings.TrimRight(line, "\r\n"), nil
	}
	if err != nil {
		return "", err
	}
	return strings.TrimRight(line, "\r\n"), nil
}

// splitArgs tokenizes a command line. Double-quoted segments keep their
// spaces: `squery /d "apple AND banana"` yields three arguments.
func splitArgs(line string) ([]string, error) {
	var args []string
	var cur strings.Builder
	inQuote := false
	flush := func() {
		if cur.Len() > 0 {
			args = append(args, cur.String())
			cur.Reset()
		}
	}
	for i := 0; i < len(line); i++ {
		c := line[i]
		switch {
		case c == '"':
			if inQuote {
				args = append(args, cur.String())
				cur.Reset()
				inQuote = false
			} else {
				flush()
				inQuote = true
			}
		case c == ' ' || c == '\t':
			if inQuote {
				cur.WriteByte(c)
			} else {
				flush()
			}
		default:
			cur.WriteByte(c)
		}
	}
	if inQuote {
		return nil, fmt.Errorf("unterminated quote")
	}
	flush()
	return args, nil
}
