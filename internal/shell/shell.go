// Package shell implements the interactive command interpreter behind
// cmd/hacsh. It exposes the paper's command suite — the ordinary
// hierarchical commands (cd, ls, mkdir, mv, rm, cat, ...) and the
// semantic extensions (smkdir, squery, slinks, ssync, sreindex, smount,
// sact, search) — over a HAC volume.
package shell

import (
	"context"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"hacfs/internal/catalog"
	"hacfs/internal/hac"
	"hacfs/internal/remote"
	"hacfs/internal/remotefs"
	"hacfs/internal/vfs"
	"hacfs/internal/vfs/cas"
)

// Shell interprets commands against one HAC volume. It is not safe for
// concurrent use.
type Shell struct {
	fs  *hac.FS
	cwd string
	out io.Writer
	// quit is set by the exit command.
	quit bool
	// snaps holds named snapshots of a content-addressed substrate.
	// They reference the blob store, not a substrate instance, so they
	// survive clone switches (the clone shares the store).
	snaps map[string]*cas.Snap
}

// New returns a shell over the given volume, writing output to out.
func New(fs *hac.FS, out io.Writer) *Shell {
	return &Shell{fs: fs, cwd: "/", out: out, snaps: make(map[string]*cas.Snap)}
}

// FS returns the underlying volume.
func (sh *Shell) FS() *hac.FS { return sh.fs }

// Cwd returns the current working directory.
func (sh *Shell) Cwd() string { return sh.cwd }

// Quit reports whether the exit command has been issued.
func (sh *Shell) Quit() bool { return sh.quit }

// abs resolves an operand against the working directory.
func (sh *Shell) abs(p string) string {
	if p == "" {
		return sh.cwd
	}
	if vfs.IsAbs(p) {
		return vfs.Join(p)
	}
	return vfs.Join(sh.cwd, p)
}

func (sh *Shell) printf(format string, args ...interface{}) {
	fmt.Fprintf(sh.out, format, args...)
}

// Run reads commands from r until EOF or exit, printing a prompt to the
// output writer when prompt is true.
func (sh *Shell) Run(r io.Reader, prompt bool) error {
	lines := newLineReader(r)
	for !sh.quit {
		if prompt {
			sh.printf("hac:%s> ", sh.cwd)
		}
		line, err := lines.next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		if err := sh.Exec(line); err != nil {
			sh.printf("error: %v\n", err)
		}
	}
	return nil
}

// Exec runs a single command line.
func (sh *Shell) Exec(line string) error {
	args, err := splitArgs(line)
	if err != nil {
		return err
	}
	if len(args) == 0 || strings.HasPrefix(args[0], "#") {
		return nil
	}
	cmd, rest := args[0], args[1:]
	fn, ok := sh.commands()[cmd]
	if !ok {
		return fmt.Errorf("unknown command %q (try help)", cmd)
	}
	return fn(rest)
}

type command func(args []string) error

func (sh *Shell) commands() map[string]command {
	return map[string]command{
		"help":     sh.cmdHelp,
		"exit":     sh.cmdExit,
		"quit":     sh.cmdExit,
		"pwd":      sh.cmdPwd,
		"cd":       sh.cmdCd,
		"ls":       sh.cmdLs,
		"tree":     sh.cmdTree,
		"cat":      sh.cmdCat,
		"write":    sh.cmdWrite,
		"mkdir":    sh.cmdMkdir,
		"rm":       sh.cmdRm,
		"rmdir":    sh.cmdRm,
		"mv":       sh.cmdMv,
		"ln":       sh.cmdLn,
		"stat":     sh.cmdStat,
		"smkdir":   sh.cmdSmkdir,
		"squery":   sh.cmdSquery,
		"slinks":   sh.cmdSlinks,
		"ssync":    sh.cmdSsync,
		"sreindex": sh.cmdSreindex,
		"smount":   sh.cmdSmount,
		"sumount":  sh.cmdSumount,
		"sact":     sh.cmdSact,
		"search":   sh.cmdSearch,
		"explain":  sh.cmdExplain,
		"sstat":    sh.cmdSstat,
		"stats":    sh.cmdStats,
		"slow":     sh.cmdSlow,
		"save":     sh.cmdSave,
		"load":     sh.cmdLoad,
		"mount":    sh.cmdMount,
		"umount":   sh.cmdUmount,
		"spublish": sh.cmdSpublish,
		"scatalog": sh.cmdScatalog,
		"ssimilar": sh.cmdSsimilar,
		"snapshot": sh.cmdSnapshot,
		"rollback": sh.cmdRollback,
		"clone":    sh.cmdClone,
	}
}

// casFS unwraps the volume's substrate layering down to a
// content-addressed file system, which the snapshot family requires.
func (sh *Shell) casFS() (*cas.FS, error) {
	fsys := sh.fs.Under()
	for {
		if c, ok := fsys.(*cas.FS); ok {
			return c, nil
		}
		u, ok := fsys.(interface{ Under() vfs.FileSystem })
		if !ok {
			return nil, fmt.Errorf("volume substrate is not content-addressed (run hacsh with -cas)")
		}
		fsys = u.Under()
	}
}

// cmdSnapshot seals the current volume state under a name (O(1): the
// tree is shared with the live overlay, not copied), or lists the
// snapshots taken so far.
func (sh *Shell) cmdSnapshot(args []string) error {
	cfs, err := sh.casFS()
	if err != nil {
		return err
	}
	if len(args) > 1 {
		return fmt.Errorf("usage: snapshot [name]")
	}
	if len(args) == 0 {
		if len(sh.snaps) == 0 {
			sh.printf("no snapshots (take one with snapshot <name>)\n")
			return nil
		}
		names := make([]string, 0, len(sh.snaps))
		for name := range sh.snaps {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			sh.printf("%-20s taken %s\n", name, sh.snaps[name].Taken().Format("2006-01-02 15:04:05"))
		}
		return nil
	}
	name := args[0]
	if _, dup := sh.snaps[name]; dup {
		return fmt.Errorf("snapshot %q already exists", name)
	}
	sh.snaps[name] = cfs.Snapshot()
	st := cfs.Store()
	sh.printf("snapshot %s sealed (%d blobs, %dB unique)\n", name, st.Blobs(), st.UniqueBytes())
	return nil
}

// cmdRollback rewinds the volume to a named snapshot and reindexes so
// the semantic layer settles over the rewound tree.
func (sh *Shell) cmdRollback(args []string) error {
	cfs, err := sh.casFS()
	if err != nil {
		return err
	}
	if len(args) != 1 {
		return fmt.Errorf("usage: rollback <snapshot>")
	}
	snap, ok := sh.snaps[args[0]]
	if !ok {
		return fmt.Errorf("no snapshot %q (take one with snapshot <name>)", args[0])
	}
	if err := cfs.Restore(snap); err != nil {
		return err
	}
	if _, err := sh.fs.Reindex("/"); err != nil {
		return err
	}
	sh.cwd = "/"
	sh.printf("rolled back to %s\n", args[0])
	return nil
}

// cmdClone forks the volume copy-on-write and switches the shell onto
// the fork: the original state is sealed (still reachable through
// snapshots sharing the store), and divergence costs only the paths
// actually rewritten.
func (sh *Shell) cmdClone(args []string) error {
	cfs, err := sh.casFS()
	if err != nil {
		return err
	}
	if len(args) != 0 {
		return fmt.Errorf("usage: clone")
	}
	fork := hac.New(cfs.Clone(), hac.Options{Observer: sh.fs.Observer()})
	if _, err := fork.Reindex("/"); err != nil {
		return err
	}
	sh.fs = fork
	sh.cwd = "/"
	sh.printf("switched to a copy-on-write clone of the volume\n")
	return nil
}

// cmdSpublish publishes this volume's semantic directories to a
// catalog server (haccatd).
func (sh *Shell) cmdSpublish(args []string) error {
	if len(args) != 2 {
		return fmt.Errorf("usage: spublish <user> <host:port>")
	}
	c := catalog.Dial(args[1])
	defer c.Close()
	n, err := c.Publish(args[0], sh.fs)
	if err != nil {
		return err
	}
	sh.printf("published %d semantic directories as %s\n", n, args[0])
	return nil
}

// cmdScatalog searches the central catalog.
func (sh *Shell) cmdScatalog(args []string) error {
	if len(args) < 2 {
		return fmt.Errorf("usage: scatalog <host:port> <query...>")
	}
	c := catalog.Dial(args[0])
	defer c.Close()
	hits, err := c.Search(strings.Join(args[1:], " "))
	if err != nil {
		return err
	}
	for _, h := range hits {
		sh.printf("%-12s %-24s %s (%d results)\n", h.User, h.Path, h.Query, len(h.Targets))
	}
	sh.printf("%d entr%s\n", len(hits), plural(len(hits), "y", "ies"))
	return nil
}

// cmdSsimilar finds classifications similar to one published entry.
func (sh *Shell) cmdSsimilar(args []string) error {
	if len(args) != 3 {
		return fmt.Errorf("usage: ssimilar <host:port> <user> <dir>")
	}
	c := catalog.Dial(args[0])
	defer c.Close()
	matches, err := c.SimilarTo(args[1], args[2])
	if err != nil {
		return err
	}
	for _, m := range matches {
		sh.printf("%-12s %-24s %.0f%% overlap\n", m.Entry.User, m.Entry.Path, 100*m.Similarity)
	}
	if len(matches) == 0 {
		sh.printf("no similar classifications\n")
	}
	return nil
}

func plural(n int, one, many string) string {
	if n == 1 {
		return one
	}
	return many
}

// mounter is the substrate surface behind the mount/umount builtins;
// both MemFS and the content-addressed substrate provide it.
type mounter interface {
	Mount(p string, m vfs.FileSystem) error
	Unmount(p string) error
}

// cmdMount syntactically mounts a remote volume served by hacvold.
func (sh *Shell) cmdMount(args []string) error {
	if len(args) != 2 {
		return fmt.Errorf("usage: mount <dir> <host:port>")
	}
	sub, ok := sh.fs.Under().(mounter)
	if !ok {
		return fmt.Errorf("mount: volume substrate does not support mounts")
	}
	client := remotefs.Dial(args[1])
	if err := client.Ping(); err != nil {
		return fmt.Errorf("cannot reach %s: %w", args[1], err)
	}
	return sub.Mount(sh.abs(args[0]), client)
}

// cmdUmount detaches a syntactic mount.
func (sh *Shell) cmdUmount(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: umount <dir>")
	}
	sub, ok := sh.fs.Under().(mounter)
	if !ok {
		return fmt.Errorf("umount: volume substrate does not support mounts")
	}
	return sub.Unmount(sh.abs(args[0]))
}

func (sh *Shell) cmdSave(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: save <host-file>")
	}
	// Atomic replace (write temp, fsync, rename): a crash mid-save
	// never leaves a torn image under the target name.
	if err := sh.fs.SaveVolumeFile(args[0]); err != nil {
		return err
	}
	sh.printf("volume saved to %s\n", args[0])
	return nil
}

func (sh *Shell) cmdLoad(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: load <host-file>")
	}
	fs, err := hac.LoadVolumeFile(args[0], hac.Options{})
	if err != nil {
		return err
	}
	sh.fs = fs
	sh.cwd = "/"
	sh.printf("volume loaded from %s\n", args[0])
	return nil
}

var helpText = `hierarchical commands:
  pwd                         print working directory
  cd [dir]                    change directory
  ls [dir]                    list directory (semantic dirs marked *)
  tree [dir]                  recursive listing
  cat <file>                  print file contents
  write <file> <text...>      create/overwrite file with text
  mkdir <dir>                 create directory
  rm <path>                   remove file, link or empty directory
  mv <old> <new>              rename/move
  ln <target> <link>          create symbolic link
  stat <path>                 show metadata

semantic commands (the paper's extensions):
  smkdir <dir> <query...>     create semantic directory
  squery <dir> [query...]     show or replace a directory's query
  slinks <dir>                show classified links
  ssync [dir]                 restore scope consistency from dir down
  sreindex [dir]              re-index files, settle all consistency
  smount <dir> <name> <addr>  semantically mount remote query system
  sumount <dir> <name>        detach a mounted namespace
  sact <link>                 print content behind a link (local/remote)
  search <scope> <query...>   evaluate a query without creating a dir
  explain <scope> <query...>  show the cost-based evaluation plan
  sstat                       show HAC layer statistics
  stats [prefix]              dump live observability metrics
  slow                        show recent over-threshold operations

  spublish <user> <addr>      publish semantic dirs to a catalog (haccatd)
  scatalog <addr> <query...>  search the central catalog
  ssimilar <addr> <user> <dir> find similar published classifications
  mount <dir> <host:port>     syntactically mount a remote volume (hacvold)
  umount <dir>                detach a syntactic mount
  save <host-file>            persist the volume to a file on the host
  load <host-file>            replace the volume with a saved one

content-addressed volumes (hacsh -cas):
  snapshot [name]             seal an O(1) named snapshot (no name: list)
  rollback <snapshot>         rewind the volume to a snapshot
  clone                       fork the volume copy-on-write and switch to it
  exit | quit                 leave the shell
`

func (sh *Shell) cmdHelp([]string) error {
	sh.printf("%s", helpText)
	return nil
}

func (sh *Shell) cmdExit([]string) error {
	sh.quit = true
	return nil
}

func (sh *Shell) cmdPwd([]string) error {
	sh.printf("%s\n", sh.cwd)
	return nil
}

func (sh *Shell) cmdCd(args []string) error {
	target := "/"
	if len(args) > 0 {
		target = sh.abs(args[0])
	}
	info, err := sh.fs.Stat(target)
	if err != nil {
		return err
	}
	if !info.IsDir() {
		return fmt.Errorf("%s: not a directory", target)
	}
	sh.cwd = target
	return nil
}

func (sh *Shell) cmdLs(args []string) error {
	dir := sh.cwd
	if len(args) > 0 {
		dir = sh.abs(args[0])
	}
	// Wildcards list the matching paths instead of a directory.
	if strings.ContainsAny(dir, "*?[") {
		matches, err := vfs.Glob(sh.fs, dir)
		if err != nil {
			return err
		}
		for _, m := range matches {
			info, err := sh.fs.Lstat(m)
			if err != nil {
				continue
			}
			sh.printf("%s\n", sh.describeEntry(vfs.Dir(m), vfs.DirEntry{
				Name: vfs.Base(m), Type: info.Type, Ino: info.Ino,
			}))
		}
		return nil
	}
	entries, err := sh.fs.ReadDir(dir)
	if err != nil {
		return err
	}
	for _, e := range entries {
		sh.printf("%s\n", sh.describeEntry(dir, e))
	}
	return nil
}

func (sh *Shell) describeEntry(dir string, e vfs.DirEntry) string {
	full := vfs.Join(dir, e.Name)
	switch e.Type {
	case vfs.TypeDir:
		if sh.fs.IsSemantic(full) {
			return e.Name + "/*"
		}
		return e.Name + "/"
	case vfs.TypeSymlink:
		target, err := sh.fs.Readlink(full)
		if err != nil {
			return e.Name + " -> ?"
		}
		return e.Name + " -> " + target
	default:
		return e.Name
	}
}

func (sh *Shell) cmdTree(args []string) error {
	root := sh.cwd
	if len(args) > 0 {
		root = sh.abs(args[0])
	}
	return vfs.Walk(sh.fs, root, func(p string, info vfs.Info) error {
		depth := strings.Count(strings.TrimPrefix(p, root), "/")
		indent := strings.Repeat("  ", depth)
		name := vfs.Base(p)
		if p == root {
			name = p
		}
		switch info.Type {
		case vfs.TypeDir:
			mark := "/"
			if sh.fs.IsSemantic(p) {
				mark = "/*"
			}
			sh.printf("%s%s%s\n", indent, name, mark)
		case vfs.TypeSymlink:
			sh.printf("%s%s -> %s\n", indent, name, info.Target)
		default:
			sh.printf("%s%s (%dB)\n", indent, name, info.Size)
		}
		return nil
	})
}

func (sh *Shell) cmdCat(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: cat <file>")
	}
	data, err := sh.fs.ReadFile(sh.abs(args[0]))
	if err != nil {
		return err
	}
	sh.printf("%s", data)
	if len(data) > 0 && data[len(data)-1] != '\n' {
		sh.printf("\n")
	}
	return nil
}

func (sh *Shell) cmdWrite(args []string) error {
	if len(args) < 2 {
		return fmt.Errorf("usage: write <file> <text...>")
	}
	return sh.fs.WriteFile(sh.abs(args[0]), []byte(strings.Join(args[1:], " ")+"\n"))
}

func (sh *Shell) cmdMkdir(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: mkdir <dir>")
	}
	return sh.fs.MkdirAll(sh.abs(args[0]))
}

func (sh *Shell) cmdRm(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: rm <path>")
	}
	return sh.fs.Remove(sh.abs(args[0]))
}

func (sh *Shell) cmdMv(args []string) error {
	if len(args) != 2 {
		return fmt.Errorf("usage: mv <old> <new>")
	}
	return sh.fs.Rename(sh.abs(args[0]), sh.abs(args[1]))
}

func (sh *Shell) cmdLn(args []string) error {
	if len(args) != 2 {
		return fmt.Errorf("usage: ln <target> <link>")
	}
	target := args[0]
	if vfs.IsAbs(target) {
		target = vfs.Join(target)
	} else if !hac.IsRemoteTarget(target) {
		target = sh.abs(target)
	}
	return sh.fs.Symlink(target, sh.abs(args[1]))
}

func (sh *Shell) cmdStat(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: stat <path>")
	}
	p := sh.abs(args[0])
	info, err := sh.fs.Lstat(p)
	if err != nil {
		return err
	}
	sh.printf("path:  %s\ntype:  %s\nsize:  %d\nmtime: %s\n",
		p, info.Type, info.Size, info.ModTime.Format("2006-01-02 15:04:05"))
	if info.Type == vfs.TypeSymlink {
		sh.printf("target: %s\n", info.Target)
	}
	if sh.fs.IsSemantic(p) {
		q, _ := sh.fs.QueryDisplay(p)
		sh.printf("query: %s\n", q)
	}
	return nil
}

func (sh *Shell) cmdSmkdir(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("usage: smkdir <dir> [query...]")
	}
	return sh.fs.MkSemDir(sh.abs(args[0]), strings.Join(args[1:], " "))
}

func (sh *Shell) cmdSquery(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: squery <dir> [new query...]")
	}
	dir := sh.abs(args[0])
	if len(args) == 1 {
		q, err := sh.fs.QueryDisplay(dir)
		if err != nil {
			return err
		}
		sh.printf("%s\n", q)
		return nil
	}
	return sh.fs.SetQuery(dir, strings.Join(args[1:], " "))
}

func (sh *Shell) cmdSlinks(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: slinks <dir>")
	}
	links, err := sh.fs.Links(sh.abs(args[0]))
	if err != nil {
		return err
	}
	for _, l := range links {
		name := l.Name
		if name == "" {
			name = "-"
		}
		sh.printf("%-10s %-20s %s\n", l.Class, name, l.Target)
	}
	return nil
}

func (sh *Shell) cmdSsync(args []string) error {
	dir := "/"
	if len(args) > 0 {
		dir = sh.abs(args[0])
	}
	return sh.fs.Sync(dir)
}

func (sh *Shell) cmdSreindex(args []string) error {
	root := "/"
	if len(args) > 0 {
		root = sh.abs(args[0])
	}
	rep, err := sh.fs.Reindex(root)
	if err != nil {
		return err
	}
	sh.printf("indexed: %d added, %d updated, %d removed (%d documents)\n",
		rep.Added, rep.Updated, rep.Removed, sh.fs.Index().NumDocs())
	return nil
}

func (sh *Shell) cmdSmount(args []string) error {
	if len(args) != 3 {
		return fmt.Errorf("usage: smount <dir> <name> <host:port>")
	}
	client := remote.Dial(args[1], args[2])
	if err := client.Ping(); err != nil {
		return fmt.Errorf("cannot reach %s: %w", args[2], err)
	}
	return sh.fs.SemanticMount(sh.abs(args[0]), client)
}

func (sh *Shell) cmdSumount(args []string) error {
	if len(args) != 2 {
		return fmt.Errorf("usage: sumount <dir> <name>")
	}
	return sh.fs.SemanticUnmount(sh.abs(args[0]), args[1])
}

func (sh *Shell) cmdSact(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: sact <link>")
	}
	data, err := sh.fs.Extract(sh.abs(args[0]))
	if err != nil {
		return err
	}
	sh.printf("%s", data)
	if len(data) > 0 && data[len(data)-1] != '\n' {
		sh.printf("\n")
	}
	return nil
}

func (sh *Shell) cmdSearch(args []string) error {
	if len(args) < 2 {
		return fmt.Errorf("usage: search <scope-dir> <query...>")
	}
	res, err := sh.fs.Search(context.Background(), strings.Join(args[1:], " "),
		hac.WithScope(sh.abs(args[0])))
	if err != nil {
		return err
	}
	results := res.All()
	sort.Strings(results)
	for _, p := range results {
		sh.printf("%s\n", p)
	}
	if res.Stats().Cached {
		sh.printf("%d match(es) (cached)\n", len(results))
	} else {
		sh.printf("%d match(es)\n", len(results))
	}
	return nil
}

// cmdExplain runs a query through the cost-based planner and prints the
// evaluation plan with per-node selectivity estimates.
func (sh *Shell) cmdExplain(args []string) error {
	if len(args) < 2 {
		return fmt.Errorf("usage: explain <scope-dir> <query...>")
	}
	res, err := sh.fs.Search(context.Background(), strings.Join(args[1:], " "),
		hac.WithScope(sh.abs(args[0])))
	if err != nil {
		return err
	}
	sh.printf("%s", res.Explain())
	st := res.Stats()
	sh.printf("matches: %d  cached: %v  leaves: %d  postings skipped: %d\n",
		st.Matches, st.Cached, st.Leaves, st.PostingsSkipped)
	return nil
}

func (sh *Shell) cmdSstat([]string) error {
	s := sh.fs.Stats()
	ixStats := sh.fs.Index().Stats()
	sh.printf("directories:     %d (%d semantic)\n", s.Directories, s.SemanticDirs)
	sh.printf("indexed files:   %d (%d terms)\n", ixStats.Docs, ixStats.Terms)
	sh.printf("index size:      %d KB\n", ixStats.IndexBytes/1024)
	sh.printf("hac metadata:    %d KB\n", sh.fs.MetadataBytes()/1024)
	sh.printf("attr cache:      %d hits / %d misses\n", s.AttrHits, s.AttrMisses)
	mounts := sh.fs.SemanticMounts()
	if len(mounts) > 0 {
		var points []string
		for p := range mounts {
			points = append(points, p)
		}
		sort.Strings(points)
		for _, p := range points {
			sh.printf("semantic mount:  %s -> %s\n", p, strings.Join(mounts[p], ", "))
		}
	}
	return nil
}

// cmdStats dumps the volume's metric registry, optionally filtered by a
// series-name prefix (e.g. "stats hac_sync").
func (sh *Shell) cmdStats(args []string) error {
	reg := sh.fs.Observer().Registry()
	if reg == nil {
		sh.printf("metrics disabled (volume opened with a discard observer)\n")
		return nil
	}
	prefix := ""
	if len(args) > 0 {
		prefix = args[0]
	}
	snap := reg.Snapshot()
	names := make([]string, 0, len(snap))
	for name := range snap {
		if strings.HasPrefix(name, prefix) {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		sh.printf("%-56s %g\n", name, snap[name])
	}
	sh.printf("%d series\n", len(names))
	return nil
}

// cmdSlow lists the observer's slow-op ring: operations that crossed
// the slow threshold, oldest first, with the captured query plan for
// slow searches.
func (sh *Shell) cmdSlow(args []string) error {
	slow := sh.fs.Observer().Slow()
	ops := slow.Recent()
	if len(ops) == 0 {
		sh.printf("no slow operations recorded (threshold %s, %d total)\n",
			slow.Threshold(), slow.Total())
		return nil
	}
	for _, op := range ops {
		line := fmt.Sprintf("%s  %-12s %8.1fms", op.Time.Format("15:04:05"), op.Op,
			float64(op.Dur)/float64(time.Millisecond))
		if op.Tenant != "" {
			line += "  tenant=" + op.Tenant
		}
		if !op.Trace.IsZero() {
			line += "  trace=" + op.Trace.String()
		}
		if op.Arg != "" {
			line += "  " + op.Arg
		}
		if op.Err != "" {
			line += "  err=" + op.Err
		}
		sh.printf("%s\n", line)
		if op.Detail != "" {
			for _, dl := range strings.Split(strings.TrimRight(op.Detail, "\n"), "\n") {
				sh.printf("    %s\n", dl)
			}
		}
	}
	sh.printf("%d of %d slow op%s retained\n", len(ops), slow.Total(), plural(int(slow.Total()), "", "s"))
	return nil
}
