package shell

import (
	"io"
	"strings"
	"testing"
)

func TestLineReaderVariants(t *testing.T) {
	lr := newLineReader(strings.NewReader("one\r\ntwo\nthree"))
	for _, want := range []string{"one", "two", "three"} {
		got, err := lr.next()
		if err != nil || got != want {
			t.Fatalf("next = %q, %v; want %q", got, err, want)
		}
	}
	if _, err := lr.next(); err != io.EOF {
		t.Fatalf("err = %v, want EOF", err)
	}
}

func TestLineReaderEmptyInput(t *testing.T) {
	lr := newLineReader(strings.NewReader(""))
	if _, err := lr.next(); err != io.EOF {
		t.Fatalf("err = %v, want EOF", err)
	}
}

func TestLineReaderBlankLines(t *testing.T) {
	lr := newLineReader(strings.NewReader("\n\nx\n"))
	for _, want := range []string{"", "", "x"} {
		got, err := lr.next()
		if err != nil || got != want {
			t.Fatalf("next = %q, %v; want %q", got, err, want)
		}
	}
}
