package shell

import (
	"bytes"
	"net"
	"reflect"
	"strings"
	"testing"

	"hacfs/internal/catalog"
	"hacfs/internal/hac"
	"hacfs/internal/remote"
	"hacfs/internal/remotefs"
	"hacfs/internal/vfs"
	"hacfs/internal/vfs/cas"
)

// runScript executes commands and returns the accumulated output.
func runScript(t *testing.T, sh *Shell, lines ...string) string {
	t.Helper()
	var buf bytes.Buffer
	sh.out = &buf
	for _, line := range lines {
		if err := sh.Exec(line); err != nil {
			t.Fatalf("Exec(%q): %v", line, err)
		}
	}
	return buf.String()
}

func newShell(t *testing.T) *Shell {
	t.Helper()
	return New(hac.New(vfs.New(), hac.Options{}), &bytes.Buffer{})
}

func TestSplitArgs(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"", nil},
		{"ls", []string{"ls"}},
		{"  cd   /a/b  ", []string{"cd", "/a/b"}},
		{`squery /d "apple AND banana"`, []string{"squery", "/d", "apple AND banana"}},
		{`write f "two words" tail`, []string{"write", "f", "two words", "tail"}},
		{`x ""`, []string{"x", ""}},
	}
	for _, c := range cases {
		got, err := splitArgs(c.in)
		if err != nil {
			t.Fatalf("splitArgs(%q): %v", c.in, err)
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("splitArgs(%q) = %#v, want %#v", c.in, got, c.want)
		}
	}
	if _, err := splitArgs(`bad "unterminated`); err == nil {
		t.Error("unterminated quote accepted")
	}
}

func TestBasicFileCommands(t *testing.T) {
	sh := newShell(t)
	out := runScript(t, sh,
		"mkdir /docs",
		"write /docs/a.txt hello world",
		"cat /docs/a.txt",
		"cd /docs",
		"pwd",
		"ls",
	)
	if !strings.Contains(out, "hello world") {
		t.Fatalf("cat output missing: %q", out)
	}
	if !strings.Contains(out, "/docs\n") {
		t.Fatalf("pwd output missing: %q", out)
	}
	if !strings.Contains(out, "a.txt") {
		t.Fatalf("ls output missing: %q", out)
	}
	if sh.Cwd() != "/docs" {
		t.Fatalf("cwd = %q", sh.Cwd())
	}
}

func TestRelativePaths(t *testing.T) {
	sh := newShell(t)
	runScript(t, sh,
		"mkdir /a",
		"cd /a",
		"write f.txt data",
		"mkdir sub",
		"cd sub",
		"cd ..",
		"mv f.txt g.txt",
	)
	if _, err := sh.FS().Stat("/a/g.txt"); err != nil {
		t.Fatalf("relative mv failed: %v", err)
	}
}

func TestSemanticWorkflow(t *testing.T) {
	sh := newShell(t)
	out := runScript(t, sh,
		"mkdir /notes",
		"write /notes/one.txt apple pie recipe",
		"write /notes/two.txt banana bread recipe",
		"write /notes/three.txt car maintenance",
		"sreindex /",
		`smkdir /recipes recipe`,
		"ls /recipes",
		"slinks /recipes",
		"squery /recipes",
		"search / apple",
	)
	if !strings.Contains(out, "one.txt -> /notes/one.txt") {
		t.Fatalf("semantic links missing from ls: %q", out)
	}
	if !strings.Contains(out, "transient") {
		t.Fatalf("slinks output missing class: %q", out)
	}
	if !strings.Contains(out, "recipe\n") {
		t.Fatalf("squery output missing: %q", out)
	}
	if !strings.Contains(out, "/notes/one.txt") || !strings.Contains(out, "1 match(es)") {
		t.Fatalf("search output wrong: %q", out)
	}

	// Delete a link, verify prohibition survives ssync.
	out = runScript(t, sh,
		"rm /recipes/two.txt",
		"ssync /",
		"slinks /recipes",
	)
	if !strings.Contains(out, "prohibited") {
		t.Fatalf("prohibited link missing: %q", out)
	}
	if strings.Count(out, "transient") != 1 {
		t.Fatalf("transient count wrong: %q", out)
	}
}

func TestSactAndStat(t *testing.T) {
	sh := newShell(t)
	out := runScript(t, sh,
		"write /f.txt fingerprint data",
		"sreindex /",
		"smkdir /fp fingerprint",
		"sact /fp/f.txt",
		"stat /fp",
	)
	if !strings.Contains(out, "fingerprint data") {
		t.Fatalf("sact output missing: %q", out)
	}
	if !strings.Contains(out, "query: fingerprint") {
		t.Fatalf("stat query missing: %q", out)
	}
}

func TestTreeMarksSemanticDirs(t *testing.T) {
	sh := newShell(t)
	out := runScript(t, sh,
		"mkdir /plain",
		"write /plain/x.txt needle",
		"sreindex /",
		"smkdir /sel needle",
		"tree /",
	)
	if !strings.Contains(out, "sel/*") {
		t.Fatalf("tree does not mark semantic dir: %q", out)
	}
	if !strings.Contains(out, "plain/") {
		t.Fatalf("tree missing plain dir: %q", out)
	}
}

func TestErrorsAreReportedNotFatal(t *testing.T) {
	sh := newShell(t)
	var buf bytes.Buffer
	sh.out = &buf
	if err := sh.Run(strings.NewReader("cat /missing\npwd\nexit\n"), false); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "error:") {
		t.Fatalf("error not reported: %q", out)
	}
	if !strings.Contains(out, "/\n") {
		t.Fatalf("shell stopped after error: %q", out)
	}
	if !sh.Quit() {
		t.Fatal("exit did not set quit")
	}
}

func TestUnknownCommand(t *testing.T) {
	sh := newShell(t)
	if err := sh.Exec("frobnicate"); err == nil {
		t.Fatal("unknown command accepted")
	}
	// Comments and blanks are fine.
	if err := sh.Exec("# a comment"); err != nil {
		t.Fatal(err)
	}
	if err := sh.Exec("   "); err != nil {
		t.Fatal(err)
	}
}

func TestSmountAgainstLiveServer(t *testing.T) {
	// Start a real hacindexd-style server.
	fsys := vfs.New()
	if err := fsys.MkdirAll("/lib"); err != nil {
		t.Fatal(err)
	}
	if err := fsys.WriteFile("/lib/paper.ps", []byte("fingerprint survey")); err != nil {
		t.Fatal(err)
	}
	backend, err := remote.NewIndexBackend(fsys, "/")
	if err != nil {
		t.Fatal(err)
	}
	srv := remote.NewServer(backend, nil)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)
	t.Cleanup(srv.Close)

	sh := newShell(t)
	out := runScript(t, sh,
		"mkdir /remote",
		"smount /remote diglib "+l.Addr().String(),
		"smkdir /fp fingerprint",
		"ls /fp",
		"sstat",
	)
	if !strings.Contains(out, "diglib.paper.ps -> remote://diglib/lib/paper.ps") {
		t.Fatalf("remote link missing: %q", out)
	}
	if !strings.Contains(out, "semantic mount:  /remote -> diglib") {
		t.Fatalf("sstat mounts missing: %q", out)
	}
	// sact fetches across the network.
	out = runScript(t, sh, "sact /fp/diglib.paper.ps")
	if !strings.Contains(out, "fingerprint survey") {
		t.Fatalf("remote sact failed: %q", out)
	}
	out = runScript(t, sh, "sumount /remote diglib", "ls /fp")
	if strings.Contains(out, "diglib.paper.ps") {
		t.Fatalf("remote link survived unmount: %q", out)
	}
}

func TestSaveAndLoad(t *testing.T) {
	path := t.TempDir() + "/volume.hac"
	sh := newShell(t)
	runScript(t, sh,
		"write /doc.txt apple content",
		"sreindex /",
		"smkdir /sel apple",
		"save "+path,
	)
	// A fresh shell loads the volume and sees everything.
	sh2 := newShell(t)
	out := runScript(t, sh2,
		"load "+path,
		"ls /sel",
		"squery /sel",
	)
	if !strings.Contains(out, "doc.txt -> /doc.txt") {
		t.Fatalf("loaded volume missing links: %q", out)
	}
	if !strings.Contains(out, "apple") {
		t.Fatalf("loaded volume missing query: %q", out)
	}
}

func TestMountRemoteVolume(t *testing.T) {
	// Alice's volume served by hacvold's machinery.
	alice := hac.New(vfs.New(), hac.Options{})
	if err := alice.MkdirAll("/docs"); err != nil {
		t.Fatal(err)
	}
	if err := alice.WriteFile("/docs/fp.txt", []byte("fingerprint notes")); err != nil {
		t.Fatal(err)
	}
	if _, err := alice.Reindex("/"); err != nil {
		t.Fatal(err)
	}
	if err := alice.MkSemDir("/fp", "fingerprint"); err != nil {
		t.Fatal(err)
	}
	srv := remotefs.NewServer(alice, nil)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)
	t.Cleanup(srv.Close)

	// Bob's shell mounts it and browses the semantic directory.
	sh := newShell(t)
	out := runScript(t, sh,
		"mkdir /alice",
		"mount /alice "+l.Addr().String(),
		"ls /alice/fp",
		"cat /alice/docs/fp.txt",
	)
	if !strings.Contains(out, "fp.txt -> /docs/fp.txt") {
		t.Fatalf("remote semantic dir invisible: %q", out)
	}
	if !strings.Contains(out, "fingerprint notes") {
		t.Fatalf("remote cat failed: %q", out)
	}
	out = runScript(t, sh, "umount /alice", "ls /alice")
	if strings.Contains(out, "fp") {
		t.Fatalf("umount did not detach: %q", out)
	}
}

func TestCatalogCommands(t *testing.T) {
	srv := catalog.NewServer(catalog.New(), nil)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)
	t.Cleanup(srv.Close)
	addr := l.Addr().String()

	sh := newShell(t)
	out := runScript(t, sh,
		"write /docs.txt fingerprint research",
		"sreindex /",
		"smkdir /fp fingerprint",
		"spublish alice "+addr,
		"scatalog "+addr+" fingerprint",
		"ssimilar "+addr+" alice /fp",
	)
	if !strings.Contains(out, "published 1 semantic directories as alice") {
		t.Fatalf("spublish output: %q", out)
	}
	if !strings.Contains(out, "alice") || !strings.Contains(out, "/fp") {
		t.Fatalf("scatalog output: %q", out)
	}
	if !strings.Contains(out, "no similar classifications") {
		t.Fatalf("ssimilar output: %q", out)
	}
}

func TestLsGlob(t *testing.T) {
	sh := newShell(t)
	out := runScript(t, sh,
		"mkdir /d",
		"write /d/a1.txt x",
		"write /d/a2.txt y",
		"write /d/b.md z",
		"ls /d/a*.txt",
	)
	if !strings.Contains(out, "a1.txt") || !strings.Contains(out, "a2.txt") {
		t.Fatalf("glob ls missing matches: %q", out)
	}
	if strings.Contains(out, "b.md") {
		t.Fatalf("glob ls matched too much: %q", out)
	}
}

func TestQuotedQueries(t *testing.T) {
	sh := newShell(t)
	runScript(t, sh,
		"write /a.txt apple banana",
		"write /b.txt apple",
		"sreindex /",
		`smkdir /sel "apple AND banana"`,
	)
	q, err := sh.FS().Query("/sel")
	if err != nil || q != "(apple AND banana)" {
		t.Fatalf("query = %q, %v", q, err)
	}
	entries, _ := sh.FS().ReadDir("/sel")
	if len(entries) != 1 {
		t.Fatalf("entries = %v", entries)
	}
}

// newCASShell builds a shell whose volume sits on the content-addressed
// substrate, like hacsh -cas does.
func newCASShell(t *testing.T) *Shell {
	t.Helper()
	return New(hac.New(cas.New(nil), hac.Options{}), &bytes.Buffer{})
}

func TestSnapshotRollback(t *testing.T) {
	sh := newCASShell(t)
	out := runScript(t, sh,
		"mkdir /docs",
		"write /docs/a.txt apple pie recipe",
		"sreindex /",
		"snapshot before",
		"write /docs/a.txt motor oil",
		"write /docs/b.txt extra file",
		"snapshot",
		"rollback before",
		"cat /docs/a.txt",
	)
	if !strings.Contains(out, "snapshot before sealed") {
		t.Fatalf("snapshot output: %q", out)
	}
	if !strings.Contains(out, "before") || !strings.Contains(out, "taken") {
		t.Fatalf("snapshot listing output: %q", out)
	}
	if !strings.Contains(out, "apple pie recipe") {
		t.Fatalf("rollback did not restore content: %q", out)
	}
	if _, err := sh.FS().Stat("/docs/b.txt"); err == nil {
		t.Fatal("file created after the snapshot survived rollback")
	}
	// Rollback reindexes: the semantic layer should reflect the rewound tree.
	if err := sh.Exec("smkdir /recipes recipe"); err != nil {
		t.Fatalf("smkdir after rollback: %v", err)
	}
	entries, err := sh.FS().ReadDir("/recipes")
	if err != nil || len(entries) != 1 {
		t.Fatalf("semantic dir after rollback: %v, %v", entries, err)
	}
}

func TestSnapshotErrors(t *testing.T) {
	sh := newCASShell(t)
	runScript(t, sh, "snapshot s1")
	if err := sh.Exec("snapshot s1"); err == nil || !strings.Contains(err.Error(), "already exists") {
		t.Fatalf("duplicate snapshot: %v", err)
	}
	if err := sh.Exec("rollback nope"); err == nil || !strings.Contains(err.Error(), "no snapshot") {
		t.Fatalf("rollback of unknown snapshot: %v", err)
	}

	plain := newShell(t)
	for _, cmd := range []string{"snapshot s", "rollback s", "clone"} {
		if err := plain.Exec(cmd); err == nil || !strings.Contains(err.Error(), "not content-addressed") {
			t.Fatalf("%s on a plain volume: %v", cmd, err)
		}
	}
}

func TestCloneDiverges(t *testing.T) {
	sh := newCASShell(t)
	out := runScript(t, sh,
		"write /f.txt original",
		"snapshot pre",
		"clone",
		"write /f.txt rewritten",
		"cat /f.txt",
	)
	if !strings.Contains(out, "copy-on-write clone") {
		t.Fatalf("clone output: %q", out)
	}
	if !strings.Contains(out, "rewritten") {
		t.Fatalf("write on the clone not visible: %q", out)
	}
	// Snapshots are keyed to the shared blob store, so one taken before
	// the clone still rolls the fork back.
	out = runScript(t, sh, "rollback pre", "cat /f.txt")
	if !strings.Contains(out, "original") {
		t.Fatalf("pre-clone snapshot did not restore the fork: %q", out)
	}
}
