// Package andrew implements the Andrew Benchmark (Howard et al.), the
// workload the paper's Table 1 and Table 2 are built on. The benchmark
// has five phases:
//
//	MakeDir  — recreate the source directory hierarchy
//	Copy     — copy every source file into the new hierarchy
//	Scan     — stat every object in the new hierarchy without reading
//	Read     — read every byte of every file
//	Make     — "compile and link" the tree (CPU-bound)
//
// The harness runs against any vfs.FileSystem, so the raw substrate
// ("UNIX" in the tables), the HAC layer, and the Jade/Pseudo baseline
// layers are directly comparable.
//
// The original benchmark compiles a C source tree; compilers are out of
// scope here, so the Make phase runs a deterministic CPU-heavy
// transform over each file's bytes and "links" the results into one
// output file. What matters for the experiment — Make does much
// computation per file-system operation, so layered-FS overhead is
// smallest there — is preserved.
package andrew

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"time"

	"hacfs/internal/vfs"
)

// Spec sizes the benchmark's source tree. The defaults approximate the
// original Andrew tree (a few dozen directories, a few hundred small
// source files).
type Spec struct {
	Dirs        int // directories in the source tree (default 20)
	FilesPerDir int // files per directory (default 10)
	FileSize    int // bytes per file (default 4096)
	MakeRounds  int // hash rounds per byte in the Make phase (default 4)
}

func (s Spec) withDefaults() Spec {
	if s.Dirs <= 0 {
		s.Dirs = 20
	}
	if s.FilesPerDir <= 0 {
		s.FilesPerDir = 10
	}
	if s.FileSize <= 0 {
		s.FileSize = 4096
	}
	if s.MakeRounds <= 0 {
		s.MakeRounds = 4
	}
	return s
}

// Result holds per-phase wall-clock times — one row of Table 1.
type Result struct {
	Spec    Spec
	MakeDir time.Duration
	Copy    time.Duration
	Scan    time.Duration
	Read    time.Duration
	Make    time.Duration

	// Counts sanity-check that the same workload ran on every layer.
	DirsMade  int
	FilesRead int
	Scanned   int
}

// Total returns the sum of the phase times.
func (r Result) Total() time.Duration {
	return r.MakeDir + r.Copy + r.Scan + r.Read + r.Make
}

// Phases returns the canonical (name, duration) rows in table order.
func (r Result) Phases() []struct {
	Name string
	D    time.Duration
} {
	return []struct {
		Name string
		D    time.Duration
	}{
		{"Makedir", r.MakeDir},
		{"Copy", r.Copy},
		{"Scan", r.Scan},
		{"Read", r.Read},
		{"Make", r.Make},
		{"Total", r.Total()},
	}
}

// GenerateSource builds the deterministic source tree under root.
func GenerateSource(fsys vfs.FileSystem, root string, spec Spec) error {
	spec = spec.withDefaults()
	if err := fsys.MkdirAll(root); err != nil {
		return err
	}
	buf := make([]byte, spec.FileSize)
	for d := 0; d < spec.Dirs; d++ {
		dir := vfs.Join(root, fmt.Sprintf("src%03d", d))
		if err := fsys.MkdirAll(dir); err != nil {
			return err
		}
		for f := 0; f < spec.FilesPerDir; f++ {
			fillSource(buf, d, f)
			p := vfs.Join(dir, fmt.Sprintf("file%03d.c", f))
			if err := fsys.WriteFile(p, buf); err != nil {
				return err
			}
		}
	}
	return nil
}

// fillSource writes pseudo-C source text into buf, deterministic in
// (dir, file). The "au<d>x<f>" token is unique to each file, so
// experiments can form queries of exact selectivity against the tree.
func fillSource(buf []byte, d, f int) {
	header := fmt.Sprintf("/* andrew src %d/%d au%dx%d */\nint main_%d_%d(void) {\n", d, f, d, f, d, f)
	copy(buf, header)
	pattern := []byte("x = compute(x, y); y = mix(y, z); /* work */\n")
	for i := len(header); i < len(buf); i++ {
		buf[i] = pattern[i%len(pattern)]
	}
}

// Run executes the five phases: the source tree at srcRoot is
// replicated to dstRoot (which must not exist) and exercised.
func Run(fsys vfs.FileSystem, srcRoot, dstRoot string, spec Spec) (Result, error) {
	spec = spec.withDefaults()
	res := Result{Spec: spec}

	// Phase 1: MakeDir.
	start := time.Now()
	err := vfs.Walk(fsys, srcRoot, func(p string, info vfs.Info) error {
		if !info.IsDir() {
			return nil
		}
		rel := p[len(srcRoot):]
		if err := fsys.MkdirAll(vfs.Join(dstRoot, rel)); err != nil {
			return err
		}
		res.DirsMade++
		return nil
	})
	if err != nil {
		return res, fmt.Errorf("andrew makedir: %w", err)
	}
	res.MakeDir = time.Since(start)

	// Phase 2: Copy.
	start = time.Now()
	srcFiles, err := vfs.Files(fsys, srcRoot)
	if err != nil {
		return res, err
	}
	for _, p := range srcFiles {
		rel := p[len(srcRoot):]
		if err := vfs.CopyFile(fsys, p, fsys, vfs.Join(dstRoot, rel)); err != nil {
			return res, fmt.Errorf("andrew copy: %w", err)
		}
	}
	res.Copy = time.Since(start)

	// Phase 3: Scan — examine status of everything without reading
	// data.
	start = time.Now()
	err = vfs.Walk(fsys, dstRoot, func(p string, info vfs.Info) error {
		if _, err := fsys.Stat(p); err != nil {
			return err
		}
		res.Scanned++
		return nil
	})
	if err != nil {
		return res, fmt.Errorf("andrew scan: %w", err)
	}
	res.Scan = time.Since(start)

	// Phase 4: Read — every byte of every file, through handles in 4 KB
	// chunks as the original does.
	start = time.Now()
	dstFiles, err := vfs.Files(fsys, dstRoot)
	if err != nil {
		return res, err
	}
	chunk := make([]byte, 4096)
	for _, p := range dstFiles {
		f, err := fsys.Open(p)
		if err != nil {
			return res, fmt.Errorf("andrew read: %w", err)
		}
		for {
			n, err := f.Read(chunk)
			if n == 0 || err != nil {
				break
			}
		}
		if err := f.Close(); err != nil {
			return res, err
		}
		res.FilesRead++
	}
	res.Read = time.Since(start)

	// Phase 5: Make — CPU-bound "compile" of each file plus a "link".
	start = time.Now()
	if err := makePhase(fsys, dstRoot, dstFiles, spec.MakeRounds); err != nil {
		return res, fmt.Errorf("andrew make: %w", err)
	}
	res.Make = time.Since(start)
	return res, nil
}

// makePhase "compiles" each source file into an .o file containing a
// CPU-expensive digest, then "links" all objects into one binary.
func makePhase(fsys vfs.FileSystem, dstRoot string, files []string, rounds int) error {
	var objects []string
	for _, p := range files {
		data, err := fsys.ReadFile(p)
		if err != nil {
			return err
		}
		digest := compile(data, rounds)
		obj := p + ".o"
		if err := fsys.WriteFile(obj, digest); err != nil {
			return err
		}
		objects = append(objects, obj)
	}
	// Link: concatenate all object digests and digest once more.
	linker := fnv.New64a()
	for _, obj := range objects {
		data, err := fsys.ReadFile(obj)
		if err != nil {
			return err
		}
		linker.Write(data)
	}
	out := make([]byte, 8)
	binary.BigEndian.PutUint64(out, linker.Sum64())
	return fsys.WriteFile(vfs.Join(dstRoot, "a.out"), out)
}

// compile is the deterministic CPU-heavy stand-in for compilation:
// `rounds` FNV passes over the content with feedback, so the work scales
// with file size like a real compiler's lexing would.
func compile(data []byte, rounds int) []byte {
	h := fnv.New64a()
	state := uint64(14695981039346656037)
	var word [8]byte
	for r := 0; r < rounds; r++ {
		h.Reset()
		binary.BigEndian.PutUint64(word[:], state)
		h.Write(word[:])
		h.Write(data)
		state = h.Sum64()
		// Feedback pass: mix the state through the buffer to defeat
		// any possibility of the loop being optimized away.
		for i := 0; i+8 <= len(data); i += 64 {
			state ^= binary.BigEndian.Uint64(data[i:]) * 1099511628211
			state = state<<13 | state>>51
		}
	}
	out := make([]byte, 16)
	binary.BigEndian.PutUint64(out[:8], h.Sum64())
	binary.BigEndian.PutUint64(out[8:], state)
	return out
}
