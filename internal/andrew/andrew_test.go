package andrew

import (
	"strings"
	"testing"

	"hacfs/internal/vfs"
)

func TestGenerateSource(t *testing.T) {
	fs := vfs.New()
	spec := Spec{Dirs: 5, FilesPerDir: 3, FileSize: 1024}
	if err := GenerateSource(fs, "/src", spec); err != nil {
		t.Fatal(err)
	}
	files, err := vfs.Files(fs, "/src")
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 15 {
		t.Fatalf("generated %d files, want 15", len(files))
	}
	data, err := fs.ReadFile(files[0])
	if err != nil || len(data) != 1024 {
		t.Fatalf("file size = %d, %v", len(data), err)
	}
	if !strings.HasPrefix(string(data), "/* andrew src") {
		t.Fatalf("unexpected content prefix %q", data[:20])
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, b := vfs.New(), vfs.New()
	spec := Spec{Dirs: 2, FilesPerDir: 2, FileSize: 256}
	if err := GenerateSource(a, "/src", spec); err != nil {
		t.Fatal(err)
	}
	if err := GenerateSource(b, "/src", spec); err != nil {
		t.Fatal(err)
	}
	fa, _ := vfs.Files(a, "/src")
	for _, p := range fa {
		da, _ := a.ReadFile(p)
		db, err := b.ReadFile(p)
		if err != nil || string(da) != string(db) {
			t.Fatalf("content mismatch at %s", p)
		}
	}
}

func TestRunPhases(t *testing.T) {
	fs := vfs.New()
	spec := Spec{Dirs: 4, FilesPerDir: 5, FileSize: 2048, MakeRounds: 2}
	if err := GenerateSource(fs, "/src", spec); err != nil {
		t.Fatal(err)
	}
	res, err := Run(fs, "/src", "/dst", spec)
	if err != nil {
		t.Fatal(err)
	}
	// 4 src dirs + the dst root itself.
	if res.DirsMade != 5 {
		t.Fatalf("DirsMade = %d, want 5", res.DirsMade)
	}
	if res.FilesRead != 20 {
		t.Fatalf("FilesRead = %d, want 20", res.FilesRead)
	}
	// Scan touched root + 4 dirs + 20 files.
	if res.Scanned != 25 {
		t.Fatalf("Scanned = %d, want 25", res.Scanned)
	}
	// Every copied file exists with correct content.
	srcFiles, _ := vfs.Files(fs, "/src")
	for _, p := range srcFiles {
		rel := p[len("/src"):]
		da, _ := fs.ReadFile(p)
		db, err := fs.ReadFile(vfs.Join("/dst", rel))
		if err != nil || string(da) != string(db) {
			t.Fatalf("copy mismatch at %s: %v", rel, err)
		}
	}
	// Make produced one .o per file plus a.out.
	if _, err := fs.Stat("/dst/a.out"); err != nil {
		t.Fatalf("a.out missing: %v", err)
	}
	objs := 0
	dstFiles, _ := vfs.Files(fs, "/dst")
	for _, p := range dstFiles {
		if strings.HasSuffix(p, ".o") {
			objs++
		}
	}
	if objs != 20 {
		t.Fatalf("objects = %d, want 20", objs)
	}
	if res.Total() <= 0 {
		t.Fatal("Total not positive")
	}
	if got := res.Phases(); len(got) != 6 || got[5].Name != "Total" {
		t.Fatalf("Phases = %v", got)
	}
}

func TestCompileDeterministicAndSensitive(t *testing.T) {
	a := compile([]byte("hello world this is content"), 3)
	b := compile([]byte("hello world this is content"), 3)
	if string(a) != string(b) {
		t.Fatal("compile not deterministic")
	}
	c := compile([]byte("hello world this is contenT"), 3)
	if string(a) == string(c) {
		t.Fatal("compile insensitive to content change")
	}
	d := compile([]byte("hello world this is content"), 4)
	if string(a) == string(d) {
		t.Fatal("compile insensitive to rounds")
	}
}

func TestRunOnFreshDestinationOnly(t *testing.T) {
	fs := vfs.New()
	spec := Spec{Dirs: 1, FilesPerDir: 1, FileSize: 128}
	if err := GenerateSource(fs, "/src", spec); err != nil {
		t.Fatal(err)
	}
	// Run twice into different destinations works.
	if _, err := Run(fs, "/src", "/dst1", spec); err != nil {
		t.Fatal(err)
	}
	if _, err := Run(fs, "/src", "/dst2", spec); err != nil {
		t.Fatal(err)
	}
}
