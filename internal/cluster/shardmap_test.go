package cluster

import (
	"reflect"
	"strings"
	"testing"
)

const testMap = `
# two routed shards, one hash catch-all
shard 0 127.0.0.1:7001,127.0.0.1:7002
shard 1 127.0.0.1:7003
shard 2 127.0.0.1:7004
route /a 0
route /a/deep 1
route /b 1
`

func TestParseMap(t *testing.T) {
	m, err := ParseMap(testMap)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Shards(); !reflect.DeepEqual(got, []int{0, 1, 2}) {
		t.Fatalf("shards = %v", got)
	}
	sh, ok := m.Shard(0)
	if !ok || len(sh.Replicas) != 2 {
		t.Fatalf("shard 0 = %+v, %v", sh, ok)
	}
	// Shard 2 has no route, so it alone backs the hash fallback.
	if !reflect.DeepEqual(m.hash, []int{2}) {
		t.Fatalf("hash set = %v", m.hash)
	}
}

func TestParseMapErrors(t *testing.T) {
	cases := []struct{ text, want string }{
		{"", "no shards"},
		{"shard 0 a:1\nshard 0 b:2", "duplicate shard"},
		{"shard 0 a:1\nroute /x 5", "undeclared shard"},
		{"shard x a:1", "bad shard id"},
		{"shard 0 a:1\nhash 9", "undeclared shard"},
		{"shard 0 a:1\nroute relative 0", "not absolute"},
		{"bogus 1 2", "unknown directive"},
	}
	for _, c := range cases {
		if _, err := ParseMap(c.text); err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("ParseMap(%q) err = %v, want containing %q", c.text, err, c.want)
		}
	}
}

func TestRouteLongestPrefix(t *testing.T) {
	m, err := ParseMap(testMap)
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string]int{
		"/a/f.txt":      0,
		"/a/deep/f.txt": 1, // more specific route wins
		"/b/sub/g.txt":  1,
		"/a":            0,
	}
	for p, want := range cases {
		if got := m.Route(p); got != want {
			t.Errorf("Route(%s) = %d, want %d", p, got, want)
		}
	}
	// Unrouted paths land on the hash set (only shard 2 here).
	if got := m.Route("/elsewhere/x"); got != 2 {
		t.Errorf("Route(/elsewhere/x) = %d, want 2", got)
	}
}

func TestRouteScope(t *testing.T) {
	m, err := ParseMap(testMap)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		scope  string
		want   []int
		routed bool
	}{
		{"/", []int{0, 1, 2}, false},
		{"/a", []int{0, 1}, true},       // /a itself plus the /a/deep carve-out
		{"/a/deep", []int{1}, true},     // fully pinned
		{"/a/shallow", []int{0}, true},  // under /a, clear of /a/deep
		{"/b", []int{1}, true},          // single shard
		{"/elsewhere", []int{2}, false}, // hash fallback only
	}
	for _, c := range cases {
		got, routed := m.RouteScope(c.scope)
		if !reflect.DeepEqual(got, c.want) || routed != c.routed {
			t.Errorf("RouteScope(%s) = %v routed=%v, want %v routed=%v",
				c.scope, got, routed, c.want, c.routed)
		}
	}
}

func TestRouteScopeHashLine(t *testing.T) {
	m, err := ParseMap("shard 0 a:1\nshard 1 b:1\nroute /x 0\nhash 0,1")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m.hash, []int{0, 1}) {
		t.Fatalf("hash set = %v", m.hash)
	}
	// All shards routed + no hash line → hash over all.
	m2, err := ParseMap("shard 0 a:1\nshard 1 b:1\nroute /x 0\nroute /y 1")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m2.hash, []int{0, 1}) {
		t.Fatalf("all-routed hash set = %v", m2.hash)
	}
}
