// Package cluster implements the sharded HAC cluster (DESIGN.md §14):
// the document tree is partitioned across N index shards, each served
// by R replica daemons, and a coordinator fans searches out to the
// shards concurrently, merging their epoch-pinned partial results into
// one answer. Routing is scope-prefix first — a subtree can be pinned
// to a shard so scoped queries touch one shard — with a hash fallback
// over the remaining document space.
package cluster

import (
	"fmt"
	gopath "path"
	"sort"
	"strings"

	"hacfs/internal/vfs"
)

// Shard is one partition of the document space: an ID and the
// addresses of its replica daemons, each serving the same index.
type Shard struct {
	ID       int
	Replicas []string
}

// route pins one path prefix to a shard.
type route struct {
	prefix string
	shard  int
}

// Map is an immutable routing table: which shards exist, which subtree
// prefixes route where, and which shards back the hash fallback for
// paths no prefix claims. Reloading produces a new Map; Generation
// distinguishes them.
type Map struct {
	shards map[int]*Shard
	order  []int   // shard IDs, ascending
	routes []route // longest prefix first
	hash   []int   // hash-fallback shard IDs, ascending
	gen    uint64
}

// ParseMap parses a shard-map config. The format is line-oriented;
// '#' starts a comment:
//
//	shard <id> <addr>[,<addr>...]   declare a shard and its replicas
//	route <prefix> <id>             pin a subtree to a shard
//	hash <id>[,<id>...]             name the hash-fallback shards
//
// Without a hash line the fallback defaults to the shards that have no
// route (they hold "everything else"), or to every shard when all are
// routed.
func ParseMap(text string) (*Map, error) {
	m := &Map{shards: make(map[int]*Shard)}
	var hashLine []int
	for i, line := range strings.Split(text, "\n") {
		if j := strings.IndexByte(line, '#'); j >= 0 {
			line = line[:j]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		lineErr := func(format string, args ...any) error {
			return fmt.Errorf("shard map line %d: %s", i+1, fmt.Sprintf(format, args...))
		}
		switch fields[0] {
		case "shard":
			if len(fields) != 3 {
				return nil, lineErr("want 'shard <id> <addr>[,<addr>...]'")
			}
			id, err := parseShardID(fields[1])
			if err != nil {
				return nil, lineErr("%v", err)
			}
			if _, dup := m.shards[id]; dup {
				return nil, lineErr("duplicate shard %d", id)
			}
			replicas := strings.Split(fields[2], ",")
			for _, r := range replicas {
				if r == "" {
					return nil, lineErr("shard %d: empty replica address", id)
				}
			}
			m.shards[id] = &Shard{ID: id, Replicas: replicas}
			m.order = append(m.order, id)
		case "route":
			if len(fields) != 3 {
				return nil, lineErr("want 'route <prefix> <id>'")
			}
			prefix := gopath.Clean(fields[1])
			if !strings.HasPrefix(prefix, "/") {
				return nil, lineErr("route prefix %q is not absolute", fields[1])
			}
			id, err := parseShardID(fields[2])
			if err != nil {
				return nil, lineErr("%v", err)
			}
			m.routes = append(m.routes, route{prefix: prefix, shard: id})
		case "hash":
			if len(fields) != 2 {
				return nil, lineErr("want 'hash <id>[,<id>...]'")
			}
			for _, f := range strings.Split(fields[1], ",") {
				id, err := parseShardID(f)
				if err != nil {
					return nil, lineErr("%v", err)
				}
				hashLine = append(hashLine, id)
			}
		default:
			return nil, lineErr("unknown directive %q", fields[0])
		}
	}
	if len(m.shards) == 0 {
		return nil, fmt.Errorf("shard map: no shards declared")
	}
	sort.Ints(m.order)
	routed := make(map[int]bool)
	for _, r := range m.routes {
		if _, ok := m.shards[r.shard]; !ok {
			return nil, fmt.Errorf("shard map: route %s names undeclared shard %d", r.prefix, r.shard)
		}
		routed[r.shard] = true
	}
	// Longest prefix first, ties by source order kept stable, so Route's
	// first match is the most specific.
	sort.SliceStable(m.routes, func(i, j int) bool {
		return len(m.routes[i].prefix) > len(m.routes[j].prefix)
	})
	switch {
	case len(hashLine) > 0:
		for _, id := range hashLine {
			if _, ok := m.shards[id]; !ok {
				return nil, fmt.Errorf("shard map: hash names undeclared shard %d", id)
			}
		}
		m.hash = dedupSorted(hashLine)
	default:
		for _, id := range m.order {
			if !routed[id] {
				m.hash = append(m.hash, id)
			}
		}
		if len(m.hash) == 0 {
			m.hash = append([]int(nil), m.order...)
		}
	}
	return m, nil
}

func parseShardID(s string) (int, error) {
	id := 0
	if s == "" {
		return 0, fmt.Errorf("empty shard id")
	}
	for _, c := range s {
		if c < '0' || c > '9' {
			return 0, fmt.Errorf("bad shard id %q", s)
		}
		id = id*10 + int(c-'0')
		if id > 1<<20 {
			return 0, fmt.Errorf("shard id %q out of range", s)
		}
	}
	return id, nil
}

func dedupSorted(ids []int) []int {
	sort.Ints(ids)
	out := ids[:0]
	for i, id := range ids {
		if i == 0 || id != ids[i-1] {
			out = append(out, id)
		}
	}
	return out
}

// Generation identifies this map revision (set by the coordinator on
// load/reload).
func (m *Map) Generation() uint64 { return m.gen }

// Shards returns the shard IDs, ascending.
func (m *Map) Shards() []int { return append([]int(nil), m.order...) }

// Shard returns one shard's declaration.
func (m *Map) Shard(id int) (*Shard, bool) {
	s, ok := m.shards[id]
	return s, ok
}

// Route returns the shard that owns path: the longest matching route
// prefix, or the hash fallback over the DocID-bearing path bytes.
func (m *Map) Route(p string) int {
	p = gopath.Clean(p)
	for _, r := range m.routes {
		if vfs.HasPrefix(p, r.prefix) {
			return r.shard
		}
	}
	return m.hash[fnv64(p)%uint64(len(m.hash))]
}

// RouteScope returns the shards that may hold documents under scope,
// ascending, plus whether routing was structure-aware (every document
// under scope provably routes inside the returned set without the hash
// fallback). A scope lying under a route prefix narrows the scatter to
// that route's shard and any more-specific routes beneath the scope.
func (m *Map) RouteScope(scope string) (ids []int, routed bool) {
	scope = gopath.Clean(scope)
	if scope == "/" || scope == "" {
		return m.Shards(), false
	}
	set := make(map[int]bool)
	covered := false
	for _, r := range m.routes {
		if vfs.HasPrefix(scope, r.prefix) && !covered {
			// Longest-first order: the first containing prefix is the
			// owner of scope itself; shorter containing prefixes are
			// shadowed by it for every path under scope.
			covered = true
			set[r.shard] = true
		}
		if vfs.HasPrefix(r.prefix, scope) {
			// A more specific route inside the scope claims part of it.
			set[r.shard] = true
		}
	}
	if !covered {
		// Some paths under scope may fall through to the hash set.
		for _, id := range m.hash {
			set[id] = true
		}
	}
	for id := range set {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids, covered
}

// fnv64 is FNV-1a, the hash fallback's path hash.
func fnv64(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
