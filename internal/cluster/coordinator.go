package cluster

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"hacfs/internal/bitset"
	"hacfs/internal/obs"
	"hacfs/internal/remote"
	"hacfs/internal/vfs"
)

// ShardConn is the coordinator's view of one replica connection. It is
// exactly the surface of *remote.BinClient, so the default dialer just
// returns one; tests substitute in-process fakes.
type ShardConn interface {
	SearchPageUnder(ctx context.Context, q, scope string, after uint64, limit int) ([]string, uint64, uint64, error)
	Resync(ctx context.Context) error
	Status(ctx context.Context) (epoch, version uint64, docs int, err error)
	FetchContext(ctx context.Context, path string) ([]byte, error)
	PingContext(ctx context.Context) error
	Close() error
}

// Options configures a Coordinator.
type Options struct {
	// Name is the namespace name used when dialing shards.
	Name string
	// AllowPartial serves a search that lost a shard as a partial
	// result (annotated in the Explain plan, the trace and
	// cluster_partial_results_total) instead of failing it.
	AllowPartial bool
	// Timeout bounds each replica attempt; a replica that exceeds it is
	// marked down and the next replica is tried while the caller's own
	// context still stands. 0 means 5s.
	Timeout time.Duration
	// Cooldown is how long a failed replica is skipped before being
	// probed again. 0 means 2s.
	Cooldown time.Duration
	// PageSize is the per-shard fetch granularity for scatter paging.
	// 0 means 512.
	PageSize int
	// MaxCursors bounds the paged-search cursor table; the least
	// recently used cursor is evicted beyond it. 0 means 1024.
	MaxCursors int
	// ResyncStagger separates consecutive replica reindexes within one
	// shard during a rolling Resync, jittered by up to half its value so
	// shards do not thunder in lockstep. Replicas of a shard always
	// resync one at a time regardless; 0 just removes the pause between
	// them.
	ResyncStagger time.Duration
	// Observer receives metrics and spans (default obs.Default()).
	Observer *obs.Observer
	// Dial opens a connection to one replica of a shard. Nil dials the
	// binary protocol via remote.DialBin.
	Dial func(shard int, addr string) ShardConn
}

// replica is one dialed replica of a shard. downUntil is a unix-nano
// cooldown deadline: failed replicas are skipped until it passes.
type replica struct {
	addr      string
	conn      ShardConn
	downUntil atomic.Int64
}

// shardState is the live state of one shard: its replicas and the
// round-robin read-balancing counter.
type shardState struct {
	id       int
	replicas []*replica
	next     atomic.Uint32
}

// state pairs an immutable Map with the dialed shard connections; a
// reload swaps the whole state pointer.
type state struct {
	m      *Map
	shards map[int]*shardState
}

// Coordinator fans Search, Resync and Fetch out to the cluster's
// shards (DESIGN.md §14). It implements the remote server's backend
// interfaces, so `remote.NewServer(coord, …)` serves the whole cluster
// behind the ordinary single-node wire protocols — clients cannot tell
// a coordinator from a big shard, except that it is faster.
type Coordinator struct {
	opts    Options
	st      atomic.Pointer[state]
	gen     atomic.Uint64
	met     *metrics
	obsv    *obs.Observer
	cursors *cursorTable

	closeMu sync.Mutex
	closed  bool
}

// New builds a coordinator over the given shard map.
func New(m *Map, opts Options) *Coordinator {
	if opts.Observer == nil {
		opts.Observer = obs.Default()
	}
	if opts.Timeout <= 0 {
		opts.Timeout = 5 * time.Second
	}
	if opts.Cooldown <= 0 {
		opts.Cooldown = 2 * time.Second
	}
	if opts.PageSize <= 0 {
		opts.PageSize = 512
	}
	if opts.MaxCursors <= 0 {
		opts.MaxCursors = 1024
	}
	if opts.Name == "" {
		opts.Name = "cluster"
	}
	if opts.Dial == nil {
		opts.Dial = func(shard int, addr string) ShardConn {
			cl := remote.DialBin(opts.Name+"/"+strconv.Itoa(shard), addr)
			cl.SetObserver(opts.Observer)
			return cl
		}
	}
	c := &Coordinator{
		opts: opts,
		met:  newMetrics(opts.Observer),
		obsv: opts.Observer,
	}
	c.cursors = newCursorTable(opts.MaxCursors, c.met.cursorsActive)
	c.install(m, nil)
	return c
}

// install swaps in a new map, reusing connections for replicas that
// persist (their cooldown state survives too) and closing dropped
// ones.
func (c *Coordinator) install(m *Map, old *state) {
	m.gen = c.gen.Add(1)
	ns := &state{m: m, shards: make(map[int]*shardState, len(m.order))}
	reuse := make(map[string]*replica)
	if old != nil {
		for _, sh := range old.shards {
			for _, r := range sh.replicas {
				reuse[replicaKey(sh.id, r.addr)] = r
			}
		}
	}
	for _, id := range m.order {
		sh := &shardState{id: id}
		for _, addr := range m.shards[id].Replicas {
			if r, ok := reuse[replicaKey(id, addr)]; ok {
				sh.replicas = append(sh.replicas, r)
				delete(reuse, replicaKey(id, addr))
				continue
			}
			sh.replicas = append(sh.replicas, &replica{addr: addr, conn: c.opts.Dial(id, addr)})
		}
		ns.shards[id] = sh
	}
	c.st.Store(ns)
	for _, r := range reuse {
		r.conn.Close()
	}
}

func replicaKey(shard int, addr string) string { return strconv.Itoa(shard) + "|" + addr }

// Reload swaps in a new shard map. In-flight searches finish against
// the state they started with; live paged cursors resume as long as
// their shard IDs survive the reload.
func (c *Coordinator) Reload(m *Map) {
	c.closeMu.Lock()
	defer c.closeMu.Unlock()
	if c.closed {
		return
	}
	c.install(m, c.st.Load())
}

// Map returns the current shard map.
func (c *Coordinator) Map() *Map { return c.st.Load().m }

// Close tears down every replica connection.
func (c *Coordinator) Close() error {
	c.closeMu.Lock()
	defer c.closeMu.Unlock()
	if c.closed {
		return nil
	}
	c.closed = true
	st := c.st.Load()
	for _, sh := range st.shards {
		for _, r := range sh.replicas {
			r.conn.Close()
		}
	}
	return nil
}

// shardPath names a shard in a *vfs.PathError.
func shardPath(id int) string { return "shard/" + strconv.Itoa(id) }

// unavailable builds the typed error for a shard no replica answered
// for.
func unavailable(op string, shard int, last error) error {
	err := error(vfs.ErrShardUnavailable)
	if last != nil {
		err = fmt.Errorf("%w: last replica error: %w", vfs.ErrShardUnavailable, last)
	}
	return &vfs.PathError{Op: op, Path: shardPath(shard), Err: err}
}

// retryable reports whether a failed replica attempt should fail over
// to the next replica. A *vfs.PathError or *remote.ServerError means
// the shard answered — same index, same answer elsewhere — so the
// error is terminal; everything else (dial failures, broken
// connections, per-attempt timeouts) is the replica's fault, not the
// shard's, as long as the caller's own context still stands.
func retryable(parent context.Context, err error) bool {
	if parent.Err() != nil {
		return false
	}
	var pe *vfs.PathError
	if errors.As(err, &pe) {
		return false
	}
	var se *remote.ServerError
	return !errors.As(err, &se)
}

// callShard runs fn against one replica of the shard, failing over
// across replicas: round-robin start for read balancing, cooldown
// skipping for known-down replicas (retried as a last resort), a
// per-attempt timeout so one hung replica cannot consume the caller's
// whole deadline. Returns the replica that answered and how many
// failovers it took.
func (c *Coordinator) callShard(ctx context.Context, st *state, shard int, op string, fn func(context.Context, ShardConn) error) (addr string, failovers int, err error) {
	sh, ok := st.shards[shard]
	if !ok || len(sh.replicas) == 0 {
		return "", 0, unavailable(op, shard, nil)
	}
	n := len(sh.replicas)
	start := int(sh.next.Add(1)-1) % n
	var lastErr error
	attempts := 0
	for pass := 0; pass < 2; pass++ {
		for i := 0; i < n; i++ {
			r := sh.replicas[(start+i)%n]
			down := time.Now().UnixNano() < r.downUntil.Load()
			if (pass == 0) == down { // pass 0: healthy replicas; pass 1: cooled-down ones
				continue
			}
			if attempts > 0 {
				failovers++
				c.met.failovers(shard).Add(1)
			}
			attempts++
			actx, cancel := context.WithTimeout(ctx, c.opts.Timeout)
			err := fn(actx, r.conn)
			cancel()
			if err == nil {
				r.downUntil.Store(0)
				return r.addr, failovers, nil
			}
			lastErr = err
			if !retryable(ctx, err) {
				return r.addr, failovers, err
			}
			r.downUntil.Store(time.Now().Add(c.opts.Cooldown).UnixNano())
		}
	}
	return "", failovers, unavailable(op, shard, lastErr)
}

// shardSlice is one shard's contribution to a scatter.
type shardSlice struct {
	shard     int
	replica   string
	paths     []string
	epoch     uint64
	dur       time.Duration
	failovers int
	err       error
}

// scatterReport describes one scatter-gather run, for Explain and
// trace annotation.
type scatterReport struct {
	Query     string
	Scope     string
	Gen       uint64
	Targets   []int
	Routed    bool // structure-aware routing (no hash fallback in play)
	Slices    []shardSlice
	Partial   []int
	Straggler time.Duration
	Merged    int
	Dups      int
}

// scatter fans one search out to every target shard concurrently, each
// shard draining its full result through cursor pages with replica
// failover, and waits for all of them.
func (c *Coordinator) scatter(ctx context.Context, st *state, q, scope string, targets []int) []shardSlice {
	slices := make([]shardSlice, len(targets))
	var wg sync.WaitGroup
	for i, shard := range targets {
		wg.Add(1)
		go func(i, shard int) {
			defer wg.Done()
			sl := &slices[i]
			sl.shard = shard
			sp, sctx := c.obsv.Tracer().StartCtx(ctx, "cluster.shard")
			sp.Annotate("shard", strconv.Itoa(shard))
			begin := time.Now()
			sl.replica, sl.failovers, sl.err = c.callShard(sctx, st, shard, "cluster.search",
				func(actx context.Context, conn ShardConn) error {
					var all []string
					after := uint64(0)
					for {
						paths, next, epoch, err := conn.SearchPageUnder(actx, q, scope, after, c.opts.PageSize)
						if err != nil {
							return err
						}
						all = append(all, paths...)
						sl.epoch = epoch
						if next == 0 {
							break
						}
						after = next
					}
					sl.paths = all
					return nil
				})
			sl.dur = time.Since(begin)
			c.met.shardSeconds(shard).Observe(sl.dur.Seconds())
			sp.FinishErr(sl.err)
		}(i, shard)
	}
	wg.Wait()
	return slices
}

// gather merges the shard slices: paths dedup across shards with the
// owner's copy winning (the cluster-level analogue of single-node
// provenance-chain canonicalization — after a reroute both the old and
// the new owner may briefly hold a document), and the accepted set is
// tracked in a bitset.Segmented whose segment IDs are the shard IDs,
// mirroring the single-node DocID space.
func (c *Coordinator) gather(st *state, rep *scatterReport) ([]string, error) {
	owner := make(map[string]int)
	res := bitset.NewSegmented()
	ordinals := make(map[int]uint32)
	for _, sl := range rep.Slices {
		if sl.err != nil {
			if !c.opts.AllowPartial {
				c.met.searchErrors.Add(1)
				return nil, sl.err
			}
			rep.Partial = append(rep.Partial, sl.shard)
			continue
		}
		if sl.dur > rep.Straggler {
			rep.Straggler = sl.dur
		}
		for _, p := range sl.paths {
			if prev, dup := owner[p]; dup {
				rep.Dups++
				if st.m.Route(p) == sl.shard && prev != sl.shard {
					owner[p] = sl.shard
				}
				continue
			}
			owner[p] = sl.shard
			res.Add(uint64(sl.shard)<<32 | uint64(ordinals[sl.shard]))
			ordinals[sl.shard]++
		}
	}
	if len(rep.Partial) > 0 {
		c.met.partials.Add(1)
	}
	if rep.Dups > 0 {
		c.met.dupsDropped.Add(int64(rep.Dups))
	}
	out := make([]string, 0, res.Len())
	for p := range owner {
		out = append(out, p)
	}
	sort.Strings(out)
	rep.Merged = len(out)
	c.met.stragglerSecs.Observe(rep.Straggler.Seconds())
	return out, nil
}

// searchScatter is the full scatter-gather search: route, fan out,
// merge.
func (c *Coordinator) searchScatter(ctx context.Context, q, scope string) (_ []string, rep *scatterReport, err error) {
	st := c.st.Load()
	targets, routed := st.m.RouteScope(scope)
	rep = &scatterReport{Query: q, Scope: scope, Gen: st.m.gen, Targets: targets, Routed: routed}
	c.met.searches.Add(1)
	c.met.fanoutWidth.Observe(float64(len(targets)))
	sp, ctx := c.obsv.Tracer().StartCtx(ctx, "cluster.search")
	sp.Annotate("query", q)
	sp.Annotate("scope", scope)
	sp.Annotate("fanout", strconv.Itoa(len(targets)))
	defer func() {
		if len(rep.Partial) > 0 {
			sp.Annotate("partial", fmt.Sprint(rep.Partial))
		}
		sp.FinishErr(err)
	}()
	rep.Slices = c.scatter(ctx, st, q, scope, targets)
	out, err := c.gather(st, rep)
	if err != nil {
		return nil, rep, err
	}
	return out, rep, nil
}

// Search implements remote.Backend: an unpaged, unscoped cluster-wide
// search.
func (c *Coordinator) Search(q string) ([]string, error) {
	out, _, err := c.searchScatter(context.Background(), q, "/")
	return out, err
}

// SearchUnder is Search restricted to a scope subtree, with the
// caller's context propagated to every shard.
func (c *Coordinator) SearchUnder(ctx context.Context, q, scope string) ([]string, error) {
	out, _, err := c.searchScatter(ctx, q, scope)
	return out, err
}

// SearchPage implements remote.PagedBackend via the composite cursor
// machinery (cursor.go).
func (c *Coordinator) SearchPage(q string, after uint64, limit int) ([]string, uint64, error) {
	paths, next, _, err := c.SearchPageUnder(context.Background(), q, "/", after, limit)
	return paths, next, err
}

// Fetch implements remote.Backend: route the path to its owning shard
// and fetch from any replica.
func (c *Coordinator) Fetch(path string) ([]byte, error) {
	return c.FetchContext(context.Background(), path)
}

// FetchContext fetches one document from the shard that owns its path.
func (c *Coordinator) FetchContext(ctx context.Context, path string) (data []byte, err error) {
	st := c.st.Load()
	shard := st.m.Route(path)
	_, _, err = c.callShard(ctx, st, shard, "cluster.fetch", func(actx context.Context, conn ShardConn) error {
		var ferr error
		data, ferr = conn.FetchContext(actx, path)
		return ferr
	})
	if err != nil {
		return nil, err
	}
	return data, nil
}

// Resync implements remote.Resyncer: reindex every replica of every
// shard (replicas are independent daemons, each owning its own index).
// Shards proceed concurrently, but within a shard replicas resync one
// at a time, separated by the jittered ResyncStagger pause — at most
// one replica per shard is rebuilding its index at any moment, so the
// shard's remaining replicas keep answering searches through the
// rolling reindex. The first failure is reported; the rolling wave
// still visits every replica.
func (c *Coordinator) Resync(ctx context.Context) (err error) {
	sp, ctx := c.obsv.Tracer().StartCtx(ctx, "cluster.resync")
	defer func() { sp.FinishErr(err) }()
	c.met.resyncs.Add(1)
	st := c.st.Load()
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	report := func(shard int, addr string, rerr error) {
		select {
		case errs <- &vfs.PathError{Op: "cluster.resync", Path: shardPath(shard) + "/" + addr, Err: rerr}:
		default:
		}
	}
	for _, id := range st.m.order {
		wg.Add(1)
		go func(shard int, replicas []*replica) {
			defer wg.Done()
			for i, r := range replicas {
				if i > 0 {
					if werr := c.staggerWait(ctx); werr != nil {
						report(shard, r.addr, werr)
						return
					}
				}
				c.met.resyncActive.Add(1)
				// Resync has no per-attempt timeout: a full reindex is
				// legitimately slow, so only the caller's context bounds it.
				rerr := r.conn.Resync(ctx)
				c.met.resyncActive.Add(-1)
				if rerr != nil {
					report(shard, r.addr, rerr)
				}
			}
		}(id, st.shards[id].replicas)
	}
	wg.Wait()
	select {
	case err = <-errs:
		return err
	default:
		return nil
	}
}

// staggerWait pauses between two replicas of a rolling resync: the
// configured stagger plus up to 50% random jitter, cut short by ctx.
func (c *Coordinator) staggerWait(ctx context.Context) error {
	d := c.opts.ResyncStagger
	if d <= 0 {
		return ctx.Err()
	}
	d += time.Duration(rand.Int63n(int64(d)/2 + 1))
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Status implements remote.StatusBackend, aggregating across shards:
// the epoch is the minimum over shards (the weakest pin a cluster-wide
// query can rely on), version and document count are sums. Best
// effort — unreachable shards contribute nothing.
func (c *Coordinator) Status() (epoch, version uint64, docs int) {
	ctx, cancel := context.WithTimeout(context.Background(), c.opts.Timeout)
	defer cancel()
	st := c.st.Load()
	first := true
	for _, id := range st.m.order {
		var e, v uint64
		var d int
		_, _, err := c.callShard(ctx, st, id, "cluster.status", func(actx context.Context, conn ShardConn) error {
			var serr error
			e, v, d, serr = conn.Status(actx)
			return serr
		})
		if err != nil {
			continue
		}
		if first || e < epoch {
			epoch = e
		}
		first = false
		version += v
		docs += d
	}
	return epoch, version, docs
}

// Ping checks that at least one replica of every shard answers.
func (c *Coordinator) Ping(ctx context.Context) error {
	st := c.st.Load()
	for _, id := range st.m.order {
		if _, _, err := c.callShard(ctx, st, id, "cluster.ping", func(actx context.Context, conn ShardConn) error {
			return conn.PingContext(actx)
		}); err != nil {
			return err
		}
	}
	return nil
}

// ExplainSearch runs a scatter-gather search and renders the cluster
// execution plan: routing decision, per-shard slice (replica, epoch,
// latency, failovers), partial-result mode, merge statistics.
func (c *Coordinator) ExplainSearch(ctx context.Context, q, scope string) (string, error) {
	_, rep, err := c.searchScatter(ctx, q, scope)
	if err != nil {
		return "", err
	}
	return rep.render(), nil
}

func (rep *scatterReport) render() string {
	var b []byte
	mode := "hash+routes"
	if rep.Routed {
		mode = "routed"
	}
	b = fmt.Appendf(b, "cluster: scope=%s gen=%d fanout=%d mode=%s\n",
		rep.Scope, rep.Gen, len(rep.Targets), mode)
	for _, sl := range rep.Slices {
		if sl.err != nil {
			b = fmt.Appendf(b, "  shard %d: unavailable (%v)\n", sl.shard, sl.err)
			continue
		}
		b = fmt.Appendf(b, "  shard %d: replica=%s paths=%d epoch=%d failovers=%d %s\n",
			sl.shard, sl.replica, len(sl.paths), sl.epoch, sl.failovers, sl.dur.Round(time.Microsecond))
	}
	b = fmt.Appendf(b, "merged: %d paths (%d duplicates dropped), straggler %s\n",
		rep.Merged, rep.Dups, rep.Straggler.Round(time.Microsecond))
	if len(rep.Partial) > 0 {
		b = fmt.Appendf(b, "mode: PARTIAL — shards %v unavailable, results incomplete\n", rep.Partial)
	}
	return string(b)
}
