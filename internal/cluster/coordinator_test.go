package cluster

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sort"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"hacfs/internal/obs"
	"hacfs/internal/vfs"
)

// fakeConn is an in-process ShardConn over a fixed path list, with
// switchable failure modes.
type fakeConn struct {
	paths []string // sorted
	epoch uint64

	failDial   atomic.Bool // transport-style failure on every call
	hang       atomic.Bool // block until the per-attempt context expires
	typedErr   atomic.Pointer[vfs.PathError]
	calls      atomic.Int64
	lastQuery  atomic.Pointer[string]
	resyncHook atomic.Pointer[func(context.Context) error] // overrides Resync when set
}

func newFake(epoch uint64, paths ...string) *fakeConn {
	sort.Strings(paths)
	return &fakeConn{paths: paths, epoch: epoch}
}

func (f *fakeConn) gate(ctx context.Context) error {
	f.calls.Add(1)
	if f.failDial.Load() {
		return fmt.Errorf("dial tcp: connection refused")
	}
	if f.hang.Load() {
		<-ctx.Done()
		return ctx.Err()
	}
	if pe := f.typedErr.Load(); pe != nil {
		return pe
	}
	return nil
}

func (f *fakeConn) SearchPageUnder(ctx context.Context, q, scope string, after uint64, limit int) ([]string, uint64, uint64, error) {
	if err := f.gate(ctx); err != nil {
		return nil, 0, 0, err
	}
	f.lastQuery.Store(&q)
	var in []string
	for _, p := range f.paths {
		if scope == "" || scope == "/" || vfs.HasPrefix(p, scope) {
			in = append(in, p)
		}
	}
	start := 0
	if after > 0 {
		start = int(after - 1)
	}
	if start >= len(in) {
		return nil, 0, f.epoch, nil
	}
	end := start + limit
	if limit <= 0 || end > len(in) {
		end = len(in)
	}
	next := uint64(0)
	if end < len(in) {
		next = uint64(end + 1)
	}
	return in[start:end], next, f.epoch, nil
}

func (f *fakeConn) Resync(ctx context.Context) error {
	if hook := f.resyncHook.Load(); hook != nil {
		return (*hook)(ctx)
	}
	return f.gate(ctx)
}

func (f *fakeConn) Status(ctx context.Context) (uint64, uint64, int, error) {
	if err := f.gate(ctx); err != nil {
		return 0, 0, 0, err
	}
	return f.epoch, 1, len(f.paths), nil
}

func (f *fakeConn) FetchContext(ctx context.Context, path string) ([]byte, error) {
	if err := f.gate(ctx); err != nil {
		return nil, err
	}
	for _, p := range f.paths {
		if p == path {
			return []byte("data:" + path), nil
		}
	}
	return nil, &vfs.PathError{Op: "fetch", Path: path, Err: vfs.ErrNotExist}
}

func (f *fakeConn) PingContext(ctx context.Context) error { return f.gate(ctx) }
func (f *fakeConn) Close() error                          { return nil }

// fleet wires a coordinator over fake replicas: conns[shard][replica].
func fleet(t *testing.T, mapText string, conns map[int][]*fakeConn, opts Options) *Coordinator {
	t.Helper()
	m, err := ParseMap(mapText)
	if err != nil {
		t.Fatal(err)
	}
	idx := make(map[int]int)
	opts.Dial = func(shard int, addr string) ShardConn {
		i := idx[shard]
		idx[shard]++
		return conns[shard][i]
	}
	if opts.Observer == nil {
		opts.Observer = obs.NewObserver()
	}
	if opts.Timeout == 0 {
		opts.Timeout = 200 * time.Millisecond
	}
	if opts.Cooldown == 0 {
		opts.Cooldown = 10 * time.Millisecond
	}
	c := New(m, opts)
	t.Cleanup(func() { c.Close() })
	return c
}

const twoShards = "shard 0 a:1\nshard 1 b:1\nroute /s0 0\nroute /s1 1"

func TestScatterGatherMergesSorted(t *testing.T) {
	c := fleet(t, twoShards, map[int][]*fakeConn{
		0: {newFake(3, "/s0/b.txt", "/s0/a.txt")},
		1: {newFake(5, "/s1/z.txt", "/s1/c.txt")},
	}, Options{PageSize: 1}) // force multi-page per-shard drains
	got, err := c.Search("q")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"/s0/a.txt", "/s0/b.txt", "/s1/c.txt", "/s1/z.txt"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Search = %v, want %v", got, want)
	}
}

func TestScopedSearchHitsOneShard(t *testing.T) {
	f0, f1 := newFake(1, "/s0/a.txt"), newFake(1, "/s1/b.txt")
	c := fleet(t, twoShards, map[int][]*fakeConn{0: {f0}, 1: {f1}}, Options{})
	got, err := c.SearchUnder(context.Background(), "q", "/s1")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, []string{"/s1/b.txt"}) {
		t.Fatalf("SearchUnder = %v", got)
	}
	if f0.calls.Load() != 0 {
		t.Fatalf("scoped search touched out-of-scope shard 0 (%d calls)", f0.calls.Load())
	}
}

func TestEmptyShardMergesClean(t *testing.T) {
	c := fleet(t, twoShards, map[int][]*fakeConn{
		0: {newFake(1)}, // holds nothing
		1: {newFake(1, "/s1/only.txt")},
	}, Options{})
	got, err := c.Search("q")
	if err != nil || !reflect.DeepEqual(got, []string{"/s1/only.txt"}) {
		t.Fatalf("Search = %v, %v", got, err)
	}
}

func TestDuplicatePathCanonicalizes(t *testing.T) {
	// The same document reported by both shards (mid-reroute overlap):
	// it must appear exactly once, with the owner's copy winning.
	obsv := obs.NewObserver()
	c := fleet(t, twoShards, map[int][]*fakeConn{
		0: {newFake(1, "/s0/dup.txt", "/s0/a.txt")},
		1: {newFake(1, "/s0/dup.txt", "/s1/b.txt")}, // stale copy on the wrong shard
	}, Options{Observer: obsv})
	got, err := c.Search("q")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"/s0/a.txt", "/s0/dup.txt", "/s1/b.txt"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Search = %v, want %v", got, want)
	}
	if n := obsv.Registry().Snapshot()["cluster_duplicates_dropped_total"]; n != 1 {
		t.Fatalf("duplicates_dropped = %v, want 1", n)
	}
}

func TestReplicaFailover(t *testing.T) {
	good := newFake(1, "/s0/a.txt")
	bad := newFake(1, "/s0/a.txt")
	bad.failDial.Store(true)
	obsv := obs.NewObserver()
	c := fleet(t, "shard 0 bad:1,good:1\nroute /s0 0", map[int][]*fakeConn{
		0: {bad, good},
	}, Options{Observer: obsv})
	// Run several searches so round-robin starts on the bad replica at
	// least once; every one must succeed.
	for i := 0; i < 4; i++ {
		if got, err := c.Search("q"); err != nil || len(got) != 1 {
			t.Fatalf("search %d: %v, %v", i, got, err)
		}
	}
	if n := obsv.Registry().Snapshot()[`cluster_replica_failovers_total{shard="0"}`]; n < 1 {
		t.Fatalf("failovers = %v, want >= 1", n)
	}
}

func TestTypedShardErrorIsTerminal(t *testing.T) {
	// A typed error from the shard must NOT fail over (the shard
	// answered; another replica would answer the same) and must surface
	// unwrapped to the caller.
	r1 := newFake(1, "/s0/a.txt")
	r1.typedErr.Store(&vfs.PathError{Op: "search", Path: "/s0", Err: vfs.ErrQuotaExceeded})
	r2 := newFake(1, "/s0/a.txt")
	c := fleet(t, "shard 0 a:1,b:1\nroute /s0 0", map[int][]*fakeConn{0: {r1, r2}}, Options{})
	_, err := c.SearchUnder(context.Background(), "q", "/s0")
	if !errors.Is(err, vfs.ErrQuotaExceeded) {
		t.Fatalf("err = %v, want quota", err)
	}
	if r1.calls.Load()+r2.calls.Load() != 1 {
		t.Fatalf("typed error retried: %d+%d calls", r1.calls.Load(), r2.calls.Load())
	}
}

func TestAllReplicasDownIsShardUnavailable(t *testing.T) {
	r1, r2 := newFake(1, "/s0/a.txt"), newFake(1, "/s0/a.txt")
	r1.failDial.Store(true)
	r2.failDial.Store(true)
	c := fleet(t, "shard 0 a:1,b:1\nroute /s0 0", map[int][]*fakeConn{0: {r1, r2}}, Options{})
	_, err := c.Search("q")
	if !errors.Is(err, vfs.ErrShardUnavailable) {
		t.Fatalf("err = %v, want ErrShardUnavailable", err)
	}
	var pe *vfs.PathError
	if !errors.As(err, &pe) || pe.Path != "shard/0" {
		t.Fatalf("err = %#v, want *vfs.PathError naming shard/0", err)
	}
}

func TestPartialModeServesRemainingShards(t *testing.T) {
	down := newFake(1, "/s0/a.txt")
	down.failDial.Store(true)
	obsv := obs.NewObserver()
	c := fleet(t, twoShards, map[int][]*fakeConn{
		0: {down},
		1: {newFake(1, "/s1/b.txt")},
	}, Options{AllowPartial: true, Observer: obsv})
	got, err := c.Search("q")
	if err != nil || !reflect.DeepEqual(got, []string{"/s1/b.txt"}) {
		t.Fatalf("partial Search = %v, %v", got, err)
	}
	if n := obsv.Registry().Snapshot()["cluster_partial_results_total"]; n != 1 {
		t.Fatalf("partials = %v, want 1", n)
	}
	// The Explain plan must announce partial mode.
	plan, err := c.ExplainSearch(context.Background(), "q", "/")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "PARTIAL") || !strings.Contains(plan, "shard 0: unavailable") {
		t.Fatalf("Explain lacks partial annotation:\n%s", plan)
	}
}

func TestOneShardTimeoutPartial(t *testing.T) {
	slow := newFake(1, "/s0/a.txt")
	slow.hang.Store(true)
	c := fleet(t, twoShards, map[int][]*fakeConn{
		0: {slow},
		1: {newFake(1, "/s1/b.txt")},
	}, Options{AllowPartial: true, Timeout: 30 * time.Millisecond})
	got, err := c.Search("q")
	if err != nil || !reflect.DeepEqual(got, []string{"/s1/b.txt"}) {
		t.Fatalf("timeout-partial Search = %v, %v", got, err)
	}
	// Without partial mode the straggler's loss is the query's loss.
	c2 := fleet(t, twoShards, map[int][]*fakeConn{
		0: {slow},
		1: {newFake(1, "/s1/b.txt")},
	}, Options{Timeout: 30 * time.Millisecond})
	if _, err := c2.Search("q"); !errors.Is(err, vfs.ErrShardUnavailable) {
		t.Fatalf("strict mode err = %v, want ErrShardUnavailable", err)
	}
}

func TestPagedSearchDrainsShardMajor(t *testing.T) {
	c := fleet(t, twoShards, map[int][]*fakeConn{
		0: {newFake(1, "/s0/a.txt", "/s0/b.txt", "/s0/c.txt")},
		1: {newFake(1, "/s1/x.txt", "/s1/y.txt")},
	}, Options{PageSize: 2})
	var all []string
	after := uint64(0)
	pages := 0
	for {
		paths, next, epoch, err := c.SearchPageUnder(context.Background(), "q", "/", after, 2)
		if err != nil {
			t.Fatal(err)
		}
		if epoch != 1 {
			t.Fatalf("epoch = %d, want 1", epoch)
		}
		all = append(all, paths...)
		pages++
		if next == 0 {
			break
		}
		after = next
	}
	want := []string{"/s0/a.txt", "/s0/b.txt", "/s0/c.txt", "/s1/x.txt", "/s1/y.txt"}
	if !reflect.DeepEqual(all, want) {
		t.Fatalf("paged drain = %v, want %v", all, want)
	}
	if pages < 3 {
		t.Fatalf("pages = %d, want >= 3", pages)
	}
}

func TestCursorResumeAfterReload(t *testing.T) {
	f0 := newFake(1, "/s0/a.txt", "/s0/b.txt", "/s0/c.txt", "/s0/d.txt")
	f1 := newFake(1, "/s1/x.txt", "/s1/y.txt")
	c := fleet(t, twoShards, map[int][]*fakeConn{0: {f0}, 1: {f1}}, Options{PageSize: 2})

	paths, next, _, err := c.SearchPageUnder(context.Background(), "q", "/", 0, 2)
	if err != nil || next == 0 {
		t.Fatalf("first page: %v next=%d err=%v", paths, next, err)
	}

	// Reload with the same shard IDs behind new replica addresses; the
	// live cursor must keep draining without loss or duplication.
	m2, err := ParseMap("shard 0 a2:1\nshard 1 b2:1\nroute /s0 0\nroute /s1 1")
	if err != nil {
		t.Fatal(err)
	}
	c.opts.Dial = func(shard int, addr string) ShardConn {
		return map[int]*fakeConn{0: f0, 1: f1}[shard]
	}
	c.Reload(m2)
	if c.Map().Generation() != 2 {
		t.Fatalf("generation = %d, want 2", c.Map().Generation())
	}

	all := append([]string(nil), paths...)
	after := next
	for after != 0 {
		paths, next, _, err := c.SearchPageUnder(context.Background(), "q", "/", after, 2)
		if err != nil {
			t.Fatal(err)
		}
		all = append(all, paths...)
		after = next
	}
	want := []string{"/s0/a.txt", "/s0/b.txt", "/s0/c.txt", "/s0/d.txt", "/s1/x.txt", "/s1/y.txt"}
	if !reflect.DeepEqual(all, want) {
		t.Fatalf("resumed drain = %v, want %v", all, want)
	}
}

func TestStaleCursorIsTypedInvalid(t *testing.T) {
	c := fleet(t, twoShards, map[int][]*fakeConn{
		0: {newFake(1, "/s0/a.txt")},
		1: {newFake(1)},
	}, Options{})
	_, _, _, err := c.SearchPageUnder(context.Background(), "q", "/", 999, 10)
	var pe *vfs.PathError
	if !errors.As(err, &pe) || !errors.Is(err, vfs.ErrInvalid) {
		t.Fatalf("stale cursor err = %v, want *vfs.PathError wrapping ErrInvalid", err)
	}
}

func TestCursorTableEviction(t *testing.T) {
	f := newFake(1, "/s0/a.txt", "/s0/b.txt", "/s0/c.txt")
	c := fleet(t, "shard 0 a:1\nroute /s0 0", map[int][]*fakeConn{0: {f}},
		Options{MaxCursors: 2, PageSize: 1})
	var handles []uint64
	for i := 0; i < 3; i++ {
		_, next, _, err := c.SearchPageUnder(context.Background(), "q", "/", 0, 1)
		if err != nil || next == 0 {
			t.Fatalf("open cursor %d: next=%d err=%v", i, next, err)
		}
		handles = append(handles, next)
	}
	// The oldest handle fell off the bounded table.
	if _, _, _, err := c.SearchPageUnder(context.Background(), "q", "/", handles[0], 1); !errors.Is(err, vfs.ErrInvalid) {
		t.Fatalf("evicted cursor err = %v, want ErrInvalid", err)
	}
	// The newest still resumes.
	if _, _, _, err := c.SearchPageUnder(context.Background(), "q", "/", handles[2], 1); err != nil {
		t.Fatalf("live cursor err = %v", err)
	}
}

func TestResyncFansToAllReplicas(t *testing.T) {
	r1, r2, r3 := newFake(1), newFake(1), newFake(1)
	c := fleet(t, "shard 0 a:1,b:1\nshard 1 c:1", map[int][]*fakeConn{
		0: {r1, r2},
		1: {r3},
	}, Options{})
	if err := c.Resync(context.Background()); err != nil {
		t.Fatal(err)
	}
	if r1.calls.Load() != 1 || r2.calls.Load() != 1 || r3.calls.Load() != 1 {
		t.Fatalf("resync calls = %d,%d,%d, want 1,1,1",
			r1.calls.Load(), r2.calls.Load(), r3.calls.Load())
	}
}

// A rolling resync keeps at most one replica per shard rebuilding at a
// time while independent shards proceed concurrently.
func TestResyncRollsOneReplicaPerShard(t *testing.T) {
	const perShard = 3
	conns := make(map[int][]*fakeConn)
	type shardTrack struct {
		active    atomic.Int64
		violation atomic.Bool
	}
	tracks := [2]*shardTrack{{}, {}}
	var overlapped atomic.Bool // did the two shards ever resync simultaneously?
	var totalActive atomic.Int64
	for shard := 0; shard < 2; shard++ {
		tr := tracks[shard]
		for i := 0; i < perShard; i++ {
			f := newFake(1)
			hook := func(context.Context) error {
				if tr.active.Add(1) > 1 {
					tr.violation.Store(true)
				}
				if totalActive.Add(1) > 1 {
					overlapped.Store(true)
				}
				time.Sleep(5 * time.Millisecond)
				totalActive.Add(-1)
				tr.active.Add(-1)
				f.calls.Add(1)
				return nil
			}
			f.resyncHook.Store(&hook)
			conns[shard] = append(conns[shard], f)
		}
	}
	c := fleet(t, "shard 0 a:1,b:1,c:1\nshard 1 d:1,e:1,f:1", conns, Options{})
	if err := c.Resync(context.Background()); err != nil {
		t.Fatal(err)
	}
	for shard, tr := range tracks {
		if tr.violation.Load() {
			t.Errorf("shard %d had concurrent replica resyncs", shard)
		}
		for i, f := range conns[shard] {
			if f.calls.Load() != 1 {
				t.Errorf("shard %d replica %d resynced %d times, want 1", shard, i, f.calls.Load())
			}
		}
	}
	if !overlapped.Load() {
		t.Error("shards resynced strictly sequentially; want shard-level concurrency")
	}
}

// The configured stagger inserts a pause between a shard's replicas.
func TestResyncStaggerPausesBetweenReplicas(t *testing.T) {
	r1, r2 := newFake(1), newFake(1)
	c := fleet(t, "shard 0 a:1,b:1", map[int][]*fakeConn{0: {r1, r2}},
		Options{ResyncStagger: 60 * time.Millisecond})
	start := time.Now()
	if err := c.Resync(context.Background()); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 60*time.Millisecond {
		t.Fatalf("two-replica resync took %s, want >= 60ms of stagger", d)
	}
	// A canceled context aborts the wave during the stagger pause.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if err := c.Resync(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded from the stagger pause", err)
	}
}

func TestFetchRoutesToOwner(t *testing.T) {
	f0 := newFake(1, "/s0/a.txt")
	f1 := newFake(1, "/s1/b.txt")
	c := fleet(t, twoShards, map[int][]*fakeConn{0: {f0}, 1: {f1}}, Options{})
	data, err := c.Fetch("/s1/b.txt")
	if err != nil || string(data) != "data:/s1/b.txt" {
		t.Fatalf("Fetch = %q, %v", data, err)
	}
	if f0.calls.Load() != 0 {
		t.Fatalf("fetch touched non-owner shard")
	}
}

func TestStatusAggregates(t *testing.T) {
	c := fleet(t, twoShards, map[int][]*fakeConn{
		0: {newFake(4, "/s0/a.txt")},
		1: {newFake(2, "/s1/b.txt", "/s1/c.txt")},
	}, Options{})
	epoch, version, docs := c.Status()
	if epoch != 2 || version != 2 || docs != 3 {
		t.Fatalf("Status = %d,%d,%d, want 2,2,3", epoch, version, docs)
	}
}
