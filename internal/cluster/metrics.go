package cluster

import (
	"strconv"

	"hacfs/internal/obs"
)

// metrics is the coordinator's handle bundle (DESIGN.md §14). Per-shard
// series are resolved lazily — shard sets change on reload — through
// the registry, which dedups by name+labels.
type metrics struct {
	reg *obs.Registry

	searches      *obs.Counter   // cluster_searches_total
	searchErrors  *obs.Counter   // cluster_search_errors_total
	fanoutWidth   *obs.Histogram // cluster_fanout_width
	stragglerSecs *obs.Histogram // cluster_straggler_seconds
	partials      *obs.Counter   // cluster_partial_results_total
	dupsDropped   *obs.Counter   // cluster_duplicates_dropped_total
	resyncs       *obs.Counter   // cluster_resyncs_total
	resyncActive  *obs.Gauge     // cluster_resync_active
	cursorsActive *obs.Gauge     // cluster_cursors_active
}

// fanoutBounds buckets scatter widths (1..large).
var fanoutBounds = []float64{1, 2, 4, 8, 16, 32, 64}

func newMetrics(o *obs.Observer) *metrics {
	r := o.Registry()
	return &metrics{
		reg:           r,
		searches:      r.Counter("cluster_searches_total"),
		searchErrors:  r.Counter("cluster_search_errors_total"),
		fanoutWidth:   r.Histogram("cluster_fanout_width", fanoutBounds),
		stragglerSecs: r.Histogram("cluster_straggler_seconds", nil),
		partials:      r.Counter("cluster_partial_results_total"),
		dupsDropped:   r.Counter("cluster_duplicates_dropped_total"),
		resyncs:       r.Counter("cluster_resyncs_total"),
		resyncActive:  r.Gauge("cluster_resync_active"),
		cursorsActive: r.Gauge("cluster_cursors_active"),
	}
}

// shardSeconds times one shard's slice of a scatter.
func (m *metrics) shardSeconds(shard int) *obs.Histogram {
	return m.reg.Histogram("cluster_shard_seconds", nil, "shard", strconv.Itoa(shard))
}

// failovers counts replica failovers (an attempt failed on one replica
// and moved to another) per shard.
func (m *metrics) failovers(shard int) *obs.Counter {
	return m.reg.Counter("cluster_replica_failovers_total", "shard", strconv.Itoa(shard))
}
