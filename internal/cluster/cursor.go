package cluster

import (
	"context"
	"sync"
	"sync/atomic"

	"hacfs/internal/obs"
	"hacfs/internal/vfs"
)

// Composite paged cursors (DESIGN.md §14). A single-node cursor is a
// DocID — stateless, resumable against any snapshot. A cluster page
// spans N shards, each with its own DocID space, so the composite
// cursor is a handle into a bounded coordinator-side table holding one
// sub-cursor per target shard: the shard's own stateless cursor, its
// buffered unread paths, and the epoch it is pinned against. Pages
// drain shard-major (all of shard A, then shard B, …), which keeps a
// cursor valid across shard-map reloads: sub-cursors name shard IDs,
// not replicas, and are re-resolved against the live state each call.
//
// The table is bounded; the least recently used cursor is evicted
// first, and resuming an evicted (or never-issued) handle fails with a
// *vfs.PathError wrapping vfs.ErrInvalid — the same contract as a
// malformed single-node cursor.

// cursorShard is one shard's sub-cursor.
type cursorShard struct {
	shard int
	after uint64 // shard-local cursor for the next fetch
	epoch uint64 // epoch of the shard's first page
	buf   []string
	done  bool
}

// cursorState is one composite cursor.
type cursorState struct {
	mu      sync.Mutex
	q       string
	scope   string
	gen     uint64 // map generation at creation
	shards  []*cursorShard
	cur     int             // shard currently draining
	seen    map[string]bool // accepted paths (cross-shard dedup)
	partial []int
	drift   bool // a shard's epoch moved mid-cursor (resync raced)

	lastUse atomic.Int64 // LRU tick
}

// cursorTable is the bounded handle table.
type cursorTable struct {
	mu     sync.Mutex
	byID   map[uint64]*cursorState
	nextID uint64
	tick   int64
	max    int
	gauge  *obs.Gauge
}

func newCursorTable(max int, gauge *obs.Gauge) *cursorTable {
	return &cursorTable{byID: make(map[uint64]*cursorState), max: max, gauge: gauge}
}

func (t *cursorTable) put(cs *cursorState) uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.nextID++
	id := t.nextID
	t.tick++
	cs.lastUse.Store(t.tick)
	t.byID[id] = cs
	for len(t.byID) > t.max {
		var lruID uint64
		var lru int64 = 1<<63 - 1
		for id, s := range t.byID {
			if u := s.lastUse.Load(); u < lru {
				lru, lruID = u, id
			}
		}
		delete(t.byID, lruID)
	}
	t.gauge.Set(int64(len(t.byID)))
	return id
}

func (t *cursorTable) get(id uint64) (*cursorState, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	cs, ok := t.byID[id]
	if ok {
		t.tick++
		cs.lastUse.Store(t.tick)
	}
	return cs, ok
}

func (t *cursorTable) drop(id uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	delete(t.byID, id)
	t.gauge.Set(int64(len(t.byID)))
}

// SearchPageUnder implements remote.ScopedBackend: one page of a
// scope-restricted cluster search. after == 0 opens a new composite
// cursor (scattering the first fetch to every target shard
// concurrently); a non-zero after resumes the cursor it named. The
// returned epoch is the minimum epoch across the cursor's shards — the
// weakest pin the composite result rests on.
func (c *Coordinator) SearchPageUnder(ctx context.Context, q, scope string, after uint64, limit int) (paths []string, next uint64, epoch uint64, err error) {
	if limit <= 0 {
		limit = c.opts.PageSize
	}
	sp, ctx := c.obsv.Tracer().StartCtx(ctx, "cluster.searchpage")
	sp.Annotate("query", q)
	defer func() {
		if err != nil {
			c.met.searchErrors.Add(1)
		}
		sp.FinishErr(err)
	}()

	var cs *cursorState
	var handle uint64
	if after == 0 {
		cs, err = c.openCursor(ctx, q, scope)
		if err != nil {
			return nil, 0, 0, err
		}
	} else {
		var ok bool
		cs, ok = c.cursors.get(after)
		if !ok {
			return nil, 0, 0, &vfs.PathError{Op: "cluster.searchp", Path: scope, Err: vfs.ErrInvalid}
		}
		handle = after
	}

	cs.mu.Lock()
	defer cs.mu.Unlock()
	if cs.q != q || cs.scope != scope {
		// The handle was minted for a different query; treat it like a
		// forged cursor rather than silently serving the wrong result.
		return nil, 0, 0, &vfs.PathError{Op: "cluster.searchp", Path: scope, Err: vfs.ErrInvalid}
	}
	out, exhausted, err := c.fillPage(ctx, cs, limit)
	if err != nil {
		return nil, 0, 0, err
	}
	if len(cs.partial) > 0 {
		sp.Annotate("partial", "true")
		c.met.partials.Add(1)
	}
	if cs.drift {
		sp.Annotate("epoch_drift", "true")
	}
	epoch = cs.minEpoch()
	if exhausted {
		if handle != 0 {
			c.cursors.drop(handle)
		}
		return out, 0, epoch, nil
	}
	if handle == 0 {
		handle = c.cursors.put(cs)
	}
	return out, handle, epoch, nil
}

// openCursor scatters the first fetch of a new composite cursor to all
// target shards concurrently.
func (c *Coordinator) openCursor(ctx context.Context, q, scope string) (*cursorState, error) {
	st := c.st.Load()
	targets, _ := st.m.RouteScope(scope)
	c.met.searches.Add(1)
	c.met.fanoutWidth.Observe(float64(len(targets)))
	cs := &cursorState{q: q, scope: scope, gen: st.m.gen, seen: make(map[string]bool)}
	for _, id := range targets {
		cs.shards = append(cs.shards, &cursorShard{shard: id})
	}
	var wg sync.WaitGroup
	errs := make([]error, len(cs.shards))
	for i, sh := range cs.shards {
		wg.Add(1)
		go func(i int, sh *cursorShard) {
			defer wg.Done()
			errs[i] = c.refill(ctx, st, cs, sh)
		}(i, sh)
	}
	wg.Wait()
	for i, err := range errs {
		if err == nil {
			continue
		}
		if !c.opts.AllowPartial {
			return nil, err
		}
		cs.partial = append(cs.partial, cs.shards[i].shard)
		cs.shards[i].done = true
	}
	return cs, nil
}

// refill fetches the shard's next page into its buffer, with replica
// failover against the given state. Caller holds cs.mu (or the cursor
// is not yet published).
func (c *Coordinator) refill(ctx context.Context, st *state, cs *cursorState, sh *cursorShard) error {
	first := sh.after == 0 && sh.epoch == 0 && !sh.done
	_, _, err := c.callShard(ctx, st, sh.shard, "cluster.searchp", func(actx context.Context, conn ShardConn) error {
		paths, next, epoch, ferr := conn.SearchPageUnder(actx, cs.q, cs.scope, sh.after, c.opts.PageSize)
		if ferr != nil {
			return ferr
		}
		sh.buf = append(sh.buf, paths...)
		sh.after = next
		sh.done = next == 0
		if first {
			sh.epoch = epoch
		} else if epoch != sh.epoch {
			cs.drift = true
		}
		return nil
	})
	return err
}

// fillPage assembles up to limit paths, draining the sub-cursors
// shard-major and refilling each from the live cluster state as its
// buffer empties. Returns exhausted=true once every shard is drained.
func (c *Coordinator) fillPage(ctx context.Context, cs *cursorState, limit int) (out []string, exhausted bool, err error) {
	st := c.st.Load()
	for len(out) < limit {
		if cs.cur >= len(cs.shards) {
			return out, true, nil
		}
		sh := cs.shards[cs.cur]
		if len(sh.buf) == 0 {
			if sh.done {
				cs.cur++
				continue
			}
			if rerr := c.refill(ctx, st, cs, sh); rerr != nil {
				if !c.opts.AllowPartial {
					return nil, false, rerr
				}
				cs.partial = append(cs.partial, sh.shard)
				sh.done = true
				continue
			}
			continue
		}
		p := sh.buf[0]
		sh.buf = sh.buf[1:]
		if cs.seen[p] {
			c.met.dupsDropped.Add(1)
			continue
		}
		cs.seen[p] = true
		out = append(out, p)
	}
	// Page full: exhausted only if nothing at all remains.
	for i := cs.cur; i < len(cs.shards); i++ {
		if len(cs.shards[i].buf) > 0 || !cs.shards[i].done {
			return out, false, nil
		}
	}
	return out, true, nil
}

// minEpoch returns the weakest epoch pin across the cursor's shards.
func (cs *cursorState) minEpoch() uint64 {
	var min uint64
	first := true
	for _, sh := range cs.shards {
		if sh.epoch == 0 {
			continue // never answered (partial)
		}
		if first || sh.epoch < min {
			min = sh.epoch
		}
		first = false
	}
	return min
}
