package cluster

import (
	"context"
	"errors"
	"net"
	"testing"
	"time"

	"hacfs/internal/obs"
	"hacfs/internal/remote"
	"hacfs/internal/vfs"
)

// TestTypedErrorsCrossBothProtocols drives a real remote.Server over a
// coordinator whose only shard is unreachable, and asserts that both
// wire protocols — the legacy line protocol and the binary mux —
// deliver the failure to the client as a *vfs.PathError wrapping
// vfs.ErrShardUnavailable, never as a raw transport error or anonymous
// string.
func TestTypedErrorsCrossBothProtocols(t *testing.T) {
	// An address that refuses connections: grab a port, then free it.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := l.Addr().String()
	l.Close()

	m, err := ParseMap("shard 0 " + deadAddr)
	if err != nil {
		t.Fatal(err)
	}
	coord := New(m, Options{
		Timeout:  200 * time.Millisecond,
		Cooldown: time.Millisecond,
		Observer: obs.NewObserver(),
	})
	defer coord.Close()

	srv := remote.NewServer(coord, nil)
	srv.SetObserver(obs.NewObserver())
	sl, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(sl)
	defer srv.Close()
	addr := sl.Addr().String()

	check := func(t *testing.T, err error) {
		t.Helper()
		if err == nil {
			t.Fatal("search against dead shard succeeded")
		}
		if !errors.Is(err, vfs.ErrShardUnavailable) {
			t.Fatalf("err = %v, want wrapping ErrShardUnavailable", err)
		}
		var pe *vfs.PathError
		if !errors.As(err, &pe) {
			t.Fatalf("err = %#v, want *vfs.PathError", err)
		}
		if pe.Path != "shard/0" {
			t.Fatalf("PathError.Path = %q, want shard/0", pe.Path)
		}
	}

	t.Run("legacy line protocol", func(t *testing.T) {
		cl := remote.Dial("test", addr)
		defer cl.Close()
		_, err := cl.Search("anything")
		check(t, err)
		_, _, _, err = cl.SearchPageUnder(context.Background(), "anything", "/", 0, 10)
		check(t, err)
	})

	t.Run("binary mux protocol", func(t *testing.T) {
		cl := remote.DialBin("test", addr)
		defer cl.Close()
		_, err := cl.Search("anything")
		check(t, err)
		_, _, _, err = cl.SearchPageUnder(context.Background(), "anything", "/", 0, 10)
		check(t, err)
	})
}

// TestMidQueryShardLossIsTyped boots one real shard behind the
// coordinator, kills it mid-cursor, and asserts the client-visible
// failure on the next page is typed — through both protocols.
func TestMidQueryShardLossIsTyped(t *testing.T) {
	for _, proto := range []string{"line", "mux"} {
		t.Run(proto, func(t *testing.T) {
			f := newFake(1, "/s0/a.txt", "/s0/b.txt", "/s0/c.txt", "/s0/d.txt")
			coord := fleet(t, "shard 0 a:1\nroute /s0 0", map[int][]*fakeConn{0: {f}},
				Options{PageSize: 2, Timeout: 100 * time.Millisecond, Cooldown: time.Millisecond})

			srv := remote.NewServer(coord, nil)
			srv.SetObserver(obs.NewObserver())
			sl, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			go srv.Serve(sl)
			defer srv.Close()

			search := func(after uint64) ([]string, uint64, error) {
				if proto == "line" {
					cl := remote.Dial("test", sl.Addr().String())
					defer cl.Close()
					paths, next, _, err := cl.SearchPageUnder(context.Background(), "q", "/s0", after, 2)
					return paths, next, err
				}
				cl := remote.DialBin("test", sl.Addr().String())
				defer cl.Close()
				paths, next, _, err := cl.SearchPageUnder(context.Background(), "q", "/s0", after, 2)
				return paths, next, err
			}

			paths, next, err := search(0)
			if err != nil || len(paths) != 2 || next == 0 {
				t.Fatalf("first page: %v next=%d err=%v", paths, next, err)
			}
			f.failDial.Store(true) // the shard dies mid-cursor
			_, _, err = search(next)
			if !errors.Is(err, vfs.ErrShardUnavailable) {
				t.Fatalf("mid-query loss err = %v, want ErrShardUnavailable", err)
			}
			var pe *vfs.PathError
			if !errors.As(err, &pe) {
				t.Fatalf("mid-query loss err = %#v, want *vfs.PathError", err)
			}
		})
	}
}
