package catalog

import (
	"net"
	"strings"
	"testing"
	"time"
)

func startCatalogServer(t *testing.T) *Client {
	t.Helper()
	srv := NewServer(New(), nil)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)
	t.Cleanup(srv.Close)
	c := Dial(l.Addr().String())
	c.timeout = 5 * time.Second
	t.Cleanup(func() { c.Close() })
	return c
}

func TestCatalogOverNetwork(t *testing.T) {
	c := startCatalogServer(t)
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}

	alice := userVolume(t, sharedFiles(), map[string]string{"/fp": "fingerprint"})
	bob := userVolume(t, sharedFiles(), map[string]string{"/bio": "fingerprint OR iris"})

	if n, err := c.Publish("alice", alice); err != nil || n != 1 {
		t.Fatalf("Publish alice = %d, %v", n, err)
	}
	if n, err := c.Publish("bob", bob); err != nil || n != 1 {
		t.Fatalf("Publish bob = %d, %v", n, err)
	}

	hits, err := c.Search("fingerprint")
	if err != nil || len(hits) != 2 {
		t.Fatalf("Search = %+v, %v", hits, err)
	}
	matches, err := c.SimilarTo("alice", "/fp")
	if err != nil || len(matches) != 1 || matches[0].Entry.User != "bob" {
		t.Fatalf("SimilarTo = %+v, %v", matches, err)
	}
	entries, err := c.Entries()
	if err != nil || len(entries) != 2 {
		t.Fatalf("Entries = %+v, %v", entries, err)
	}
}

func TestCatalogServerRejectsSpoofedUser(t *testing.T) {
	c := startCatalogServer(t)
	_, err := c.call(&catRequest{
		Op:   catPublish,
		User: "mallory",
		Entries: []Entry{
			{User: "alice", Path: "/stolen", Query: "x"},
		},
	})
	if err == nil || !strings.Contains(err.Error(), "does not match") {
		t.Fatalf("spoofed publish err = %v", err)
	}
}

func TestCatalogServerErrors(t *testing.T) {
	c := startCatalogServer(t)
	if _, err := c.Search("(((bad"); err == nil {
		t.Fatal("bad query accepted")
	}
	if _, err := c.SimilarTo("nobody", "/x"); err == nil {
		t.Fatal("unknown entry accepted")
	}
	// Connection survives server-side errors.
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
}
