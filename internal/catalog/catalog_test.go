package catalog

import (
	"strings"
	"testing"

	"hacfs/internal/hac"
	"hacfs/internal/vfs"
)

func userVolume(t *testing.T, files map[string]string, dirs map[string]string) *hac.FS {
	t.Helper()
	fs := hac.New(vfs.New(), hac.Options{})
	for p, content := range files {
		if err := fs.MkdirAll(vfs.Dir(p)); err != nil {
			t.Fatal(err)
		}
		if err := fs.WriteFile(p, []byte(content)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := fs.Reindex("/"); err != nil {
		t.Fatal(err)
	}
	for dir, q := range dirs {
		if err := fs.MkSemDir(dir, q); err != nil {
			t.Fatal(err)
		}
	}
	return fs
}

func sharedFiles() map[string]string {
	return map[string]string{
		"/docs/fp1.txt":    "fingerprint matching algorithms",
		"/docs/fp2.txt":    "fingerprint sensor design",
		"/docs/iris.txt":   "iris recognition",
		"/docs/cook.txt":   "apple pie recipe",
		"/docs/garden.txt": "tomato growing guide",
	}
}

func TestPublishAndSearch(t *testing.T) {
	alice := userVolume(t, sharedFiles(), map[string]string{
		"/fingerprint": "fingerprint",
		"/recipes":     "recipe",
	})
	bob := userVolume(t, sharedFiles(), map[string]string{
		"/biometrics": "fingerprint OR iris",
	})

	c := New()
	if n, err := c.Publish("alice", alice); err != nil || n != 2 {
		t.Fatalf("Publish(alice) = %d, %v", n, err)
	}
	if n, err := c.Publish("bob", bob); err != nil || n != 1 {
		t.Fatalf("Publish(bob) = %d, %v", n, err)
	}
	if c.Len() != 3 {
		t.Fatalf("Len = %d", c.Len())
	}

	// Search by query vocabulary.
	hits, err := c.Search("fingerprint")
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 2 {
		t.Fatalf("fingerprint hits = %+v", hits)
	}
	// Search by user.
	hits, err = c.Search("alice AND recipe")
	if err != nil || len(hits) != 1 || hits[0].Path != "/recipes" {
		t.Fatalf("alice+recipe hits = %+v, %v", hits, err)
	}
	// Search matching result paths (targets are indexed too).
	hits, err = c.Search("fp1")
	if err != nil || len(hits) != 2 {
		t.Fatalf("target-path hits = %+v, %v", hits, err)
	}
	// No match.
	hits, err = c.Search("nonexistentterm")
	if err != nil || len(hits) != 0 {
		t.Fatalf("miss = %+v, %v", hits, err)
	}
}

func TestSimilarTo(t *testing.T) {
	alice := userVolume(t, sharedFiles(), map[string]string{"/fp": "fingerprint"})
	bob := userVolume(t, sharedFiles(), map[string]string{"/bio": "fingerprint OR iris"})
	carol := userVolume(t, sharedFiles(), map[string]string{"/food": "recipe OR tomato"})

	c := New()
	for user, fs := range map[string]*hac.FS{"alice": alice, "bob": bob, "carol": carol} {
		if _, err := c.Publish(user, fs); err != nil {
			t.Fatal(err)
		}
	}
	matches, err := c.SimilarTo("alice", "/fp")
	if err != nil {
		t.Fatal(err)
	}
	// Bob overlaps (fingerprint files); Carol does not.
	if len(matches) != 1 || matches[0].Entry.User != "bob" {
		t.Fatalf("matches = %+v", matches)
	}
	if matches[0].Similarity <= 0 || matches[0].Similarity > 1 {
		t.Fatalf("similarity = %f", matches[0].Similarity)
	}
	// Unknown entry.
	if _, err := c.SimilarTo("nobody", "/x"); err == nil {
		t.Fatal("unknown entry accepted")
	}
}

func TestRepublishReplaces(t *testing.T) {
	alice := userVolume(t, sharedFiles(), map[string]string{"/fp": "fingerprint"})
	c := New()
	if _, err := c.Publish("alice", alice); err != nil {
		t.Fatal(err)
	}
	// Alice renames her query; republish replaces the entry.
	if err := alice.SetQuery("/fp", "iris"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Publish("alice", alice); err != nil {
		t.Fatal(err)
	}
	if c.Len() != 1 {
		t.Fatalf("Len after republish = %d", c.Len())
	}
	hits, _ := c.Search("iris")
	if len(hits) != 1 {
		t.Fatalf("new query not searchable: %+v", hits)
	}
	hits, _ = c.Search("fingerprint")
	for _, h := range hits {
		if strings.Contains(h.Query, "fingerprint") {
			t.Fatalf("stale entry remains: %+v", h)
		}
	}
}

func TestRemove(t *testing.T) {
	c := New()
	c.Add(Entry{User: "u", Path: "/d", Query: "x", Targets: []string{"/f"}})
	if !c.Remove("u", "/d") {
		t.Fatal("Remove failed")
	}
	if c.Remove("u", "/d") {
		t.Fatal("second Remove succeeded")
	}
	if c.Len() != 0 {
		t.Fatalf("Len = %d", c.Len())
	}
	hits, _ := c.Search("x")
	if len(hits) != 0 {
		t.Fatalf("removed entry searchable: %+v", hits)
	}
}

func TestEntriesSorted(t *testing.T) {
	c := New()
	c.Add(Entry{User: "zed", Path: "/a"})
	c.Add(Entry{User: "amy", Path: "/z"})
	c.Add(Entry{User: "amy", Path: "/a"})
	es := c.Entries()
	if es[0].User != "amy" || es[0].Path != "/a" || es[2].User != "zed" {
		t.Fatalf("Entries order = %+v", es)
	}
}
