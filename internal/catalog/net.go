package catalog

import (
	"encoding/gob"
	"fmt"
	"io"
	"log"
	"net"
	"sync"
	"time"

	"hacfs/internal/hac"
)

// Network form of the §3.2 central database: users publish the names,
// queries and query-results of their semantic directories to a shared
// catalog server, then search it and ask for similar classifications.

type catOp uint8

const (
	catPublish catOp = iota + 1
	catSearch
	catSimilar
	catEntries
	catPing
)

type catRequest struct {
	Op      catOp
	User    string
	Path    string
	Query   string
	Entries []Entry
}

type catResponse struct {
	Err     string
	Entries []Entry
	Matches []Match
	N       int
}

// Server exposes a Catalog over TCP.
type Server struct {
	cat    *Catalog
	logger *log.Logger

	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]struct{}
	closed   bool
	wg       sync.WaitGroup
}

// NewServer wraps a catalog (use New() for a fresh one). logger may be
// nil.
func NewServer(cat *Catalog, logger *log.Logger) *Server {
	return &Server{cat: cat, logger: logger, conns: make(map[net.Conn]struct{})}
}

// Catalog returns the served catalog.
func (s *Server) Catalog() *Catalog { return s.cat }

// Serve accepts connections until Close.
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return net.ErrClosed
	}
	s.listener = l
	s.mu.Unlock()
	for {
		conn, err := l.Accept()
		if err != nil {
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return net.ErrClosed
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go func() {
			defer s.wg.Done()
			s.serveConn(conn)
			s.mu.Lock()
			delete(s.conns, conn)
			s.mu.Unlock()
		}()
	}
}

// Close stops the server.
func (s *Server) Close() {
	s.mu.Lock()
	s.closed = true
	if s.listener != nil {
		s.listener.Close()
	}
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
}

func (s *Server) serveConn(conn net.Conn) {
	defer conn.Close()
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	for {
		var req catRequest
		if err := dec.Decode(&req); err != nil {
			if err != io.EOF && s.logger != nil {
				s.logger.Printf("catalog: decode: %v", err)
			}
			return
		}
		if err := enc.Encode(s.handle(&req)); err != nil {
			return
		}
	}
}

func (s *Server) handle(req *catRequest) *catResponse {
	switch req.Op {
	case catPing:
		return &catResponse{}
	case catPublish:
		for _, e := range req.Entries {
			if e.User != req.User {
				return &catResponse{Err: "catalog: entry user does not match publisher"}
			}
			s.cat.Add(e)
		}
		return &catResponse{N: len(req.Entries)}
	case catSearch:
		hits, err := s.cat.Search(req.Query)
		if err != nil {
			return &catResponse{Err: err.Error()}
		}
		return &catResponse{Entries: hits}
	case catSimilar:
		matches, err := s.cat.SimilarTo(req.User, req.Path)
		if err != nil {
			return &catResponse{Err: err.Error()}
		}
		return &catResponse{Matches: matches}
	case catEntries:
		return &catResponse{Entries: s.cat.Entries()}
	default:
		return &catResponse{Err: "catalog: unknown operation"}
	}
}

// Client talks to a catalog server. Safe for concurrent use.
type Client struct {
	addr    string
	timeout time.Duration

	mu   sync.Mutex
	conn net.Conn
	enc  *gob.Encoder
	dec  *gob.Decoder
}

// Dial creates a client for the catalog server at addr.
func Dial(addr string) *Client {
	return &Client{addr: addr, timeout: 10 * time.Second}
}

// Close drops the connection; later calls re-dial.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dropLocked()
}

func (c *Client) dropLocked() error {
	if c.conn == nil {
		return nil
	}
	err := c.conn.Close()
	c.conn, c.enc, c.dec = nil, nil, nil
	return err
}

func (c *Client) call(req *catRequest) (*catResponse, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var lastErr error
	for attempt := 0; attempt < 2; attempt++ {
		if c.conn == nil {
			conn, err := net.DialTimeout("tcp", c.addr, c.timeout)
			if err != nil {
				return nil, fmt.Errorf("catalog: dial %s: %w", c.addr, err)
			}
			c.conn = conn
			c.enc = gob.NewEncoder(conn)
			c.dec = gob.NewDecoder(conn)
		}
		if c.timeout > 0 {
			c.conn.SetDeadline(time.Now().Add(c.timeout))
		}
		if err := c.enc.Encode(req); err != nil {
			lastErr = err
			c.dropLocked()
			continue
		}
		var resp catResponse
		if err := c.dec.Decode(&resp); err != nil {
			lastErr = err
			c.dropLocked()
			continue
		}
		if resp.Err != "" {
			return nil, fmt.Errorf("catalog: server: %s", resp.Err)
		}
		return &resp, nil
	}
	return nil, fmt.Errorf("catalog: %s: %w", c.addr, lastErr)
}

// Ping checks liveness.
func (c *Client) Ping() error {
	_, err := c.call(&catRequest{Op: catPing})
	return err
}

// Harvest collects the publishable entries of a volume.
func Harvest(user string, fs *hac.FS) ([]Entry, error) {
	var out []Entry
	for _, dir := range fs.SemanticDirs() {
		q, err := fs.QueryDisplay(dir)
		if err != nil {
			return nil, err
		}
		targets, err := fs.LinkTargets(dir)
		if err != nil {
			return nil, err
		}
		out = append(out, Entry{User: user, Path: dir, Query: q, Targets: targets})
	}
	return out, nil
}

// Publish harvests a volume's semantic directories and ships them to
// the server, returning how many entries were published.
func (c *Client) Publish(user string, fs *hac.FS) (int, error) {
	entries, err := Harvest(user, fs)
	if err != nil {
		return 0, err
	}
	resp, err := c.call(&catRequest{Op: catPublish, User: user, Entries: entries})
	if err != nil {
		return 0, err
	}
	return resp.N, nil
}

// Search queries the remote catalog.
func (c *Client) Search(q string) ([]Entry, error) {
	resp, err := c.call(&catRequest{Op: catSearch, Query: q})
	if err != nil {
		return nil, err
	}
	return resp.Entries, nil
}

// SimilarTo asks for classifications similar to the given entry.
func (c *Client) SimilarTo(user, path string) ([]Match, error) {
	resp, err := c.call(&catRequest{Op: catSimilar, User: user, Path: path})
	if err != nil {
		return nil, err
	}
	return resp.Matches, nil
}

// Entries lists the whole remote catalog.
func (c *Client) Entries() ([]Entry, error) {
	resp, err := c.call(&catRequest{Op: catEntries})
	if err != nil {
		return nil, err
	}
	return resp.Entries, nil
}
