// Package catalog implements the central database sketched in §3.2 of
// the paper: "it is also possible to collect the names, queries and
// query-results of many semantic directories of many users in a
// central database that itself can be indexed and searched. Users can
// browse and search this database and find others who have similar
// tastes as they have."
//
// A Catalog holds published entries — one per (user, semantic
// directory) — indexes them with the same engine that indexes files,
// answers boolean queries over them, and ranks entries by
// result-overlap to surface users with similar classifications.
package catalog

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"hacfs/internal/hac"
	"hacfs/internal/index"
	"hacfs/internal/query"
	"hacfs/internal/query/plan"
)

// Entry is one published semantic directory.
type Entry struct {
	User    string
	Path    string   // path within the user's volume
	Query   string   // display-form query
	Targets []string // current link targets (the query-result)
}

// key identifies an entry.
func (e Entry) key() string { return e.User + ":" + e.Path }

// Catalog is a searchable collection of entries. It is safe for
// concurrent use.
type Catalog struct {
	mu      sync.Mutex
	entries map[string]Entry // by key
	ix      *index.Index
}

// New returns an empty catalog.
func New() *Catalog {
	return &Catalog{
		entries: make(map[string]Entry),
		ix:      index.New(),
	}
}

// Add inserts or replaces one entry.
func (c *Catalog) Add(e Entry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries[e.key()] = e
	c.ix.Add(e.key(), []byte(entryText(e)))
}

// entryText renders an entry as an indexable document.
func entryText(e Entry) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "user %s\npath %s\nquery %s\n", e.User, e.Path, e.Query)
	for _, t := range e.Targets {
		sb.WriteString(t)
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Publish harvests every semantic directory of a volume under the
// given user name. It returns the number of entries published.
func (c *Catalog) Publish(user string, fs *hac.FS) (int, error) {
	n := 0
	for _, dir := range fs.SemanticDirs() {
		q, err := fs.QueryDisplay(dir)
		if err != nil {
			return n, err
		}
		targets, err := fs.LinkTargets(dir)
		if err != nil {
			return n, err
		}
		c.Add(Entry{User: user, Path: dir, Query: q, Targets: targets})
		n++
	}
	return n, nil
}

// Remove drops one entry.
func (c *Catalog) Remove(user, path string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	k := user + ":" + path
	if _, ok := c.entries[k]; !ok {
		return false
	}
	delete(c.entries, k)
	c.ix.Remove(k)
	return true
}

// Len returns the number of entries.
func (c *Catalog) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Entries returns all entries sorted by user then path.
func (c *Catalog) Entries() []Entry {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Entry, 0, len(c.entries))
	for _, e := range c.entries {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].User != out[j].User {
			return out[i].User < out[j].User
		}
		return out[i].Path < out[j].Path
	})
	return out
}

// Search runs a boolean query over the published entries (matching
// their user names, paths, queries and result paths) and returns the
// matches sorted by user/path. Queries are compiled by the cost-based
// planner, the same evaluator HAC volumes use.
func (c *Catalog) Search(q string) ([]Entry, error) {
	ast, err := query.Parse(q)
	if err != nil {
		if errors.Is(err, query.ErrEmpty) {
			return nil, nil
		}
		return nil, err
	}
	if len(query.Refs(ast)) > 0 {
		return nil, errors.New("catalog: dir references are not meaningful here")
	}
	c.mu.Lock()
	snap := c.ix.Snapshot()
	c.mu.Unlock()
	p, err := plan.Build(ast, plan.Scope{}, &plan.SnapEnv{Snap: snap})
	if err != nil {
		return nil, err
	}
	bm, err := p.Exec()
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []Entry
	for _, k := range snap.Paths(bm) {
		if e, ok := c.entries[k]; ok {
			out = append(out, e)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].User != out[j].User {
			return out[i].User < out[j].User
		}
		return out[i].Path < out[j].Path
	})
	return out, nil
}

// Match is one similarity result.
type Match struct {
	Entry      Entry
	Similarity float64 // Jaccard overlap of target sets, in (0, 1]
}

// SimilarTo ranks other users' entries by overlap with the given
// entry's result set — "find others who have similar tastes". Entries
// of the same user and entries with no overlap are omitted.
func (c *Catalog) SimilarTo(user, path string) ([]Match, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	self, ok := c.entries[user+":"+path]
	if !ok {
		return nil, fmt.Errorf("catalog: no entry %s:%s", user, path)
	}
	mine := make(map[string]bool, len(self.Targets))
	for _, t := range self.Targets {
		mine[t] = true
	}
	var out []Match
	for _, e := range c.entries {
		if e.User == user {
			continue
		}
		inter, union := 0, len(mine)
		for _, t := range e.Targets {
			if mine[t] {
				inter++
			} else {
				union++
			}
		}
		if inter == 0 || union == 0 {
			continue
		}
		out = append(out, Match{Entry: e, Similarity: float64(inter) / float64(union)})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Similarity != out[j].Similarity {
			return out[i].Similarity > out[j].Similarity
		}
		return out[i].Entry.key() < out[j].Entry.key()
	})
	return out, nil
}
