package corpus

import (
	"strings"
	"testing"

	"hacfs/internal/vfs"
)

func generate(t *testing.T, spec Spec) (*vfs.MemFS, *Manifest) {
	t.Helper()
	fs := vfs.New()
	if err := fs.MkdirAll("/corpus"); err != nil {
		t.Fatal(err)
	}
	m, err := Generate(fs, "/corpus", spec)
	if err != nil {
		t.Fatal(err)
	}
	return fs, m
}

func TestGenerateCounts(t *testing.T) {
	fs, m := generate(t, Spec{Files: 100, Seed: 7})
	if len(m.Files) != 100 {
		t.Fatalf("manifest lists %d files, want 100", len(m.Files))
	}
	files, err := vfs.Files(fs, "/corpus")
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 100 {
		t.Fatalf("fs holds %d files, want 100", len(files))
	}
	if m.TotalBytes <= 0 {
		t.Fatal("TotalBytes not recorded")
	}
}

func TestDeterminism(t *testing.T) {
	_, m1 := generate(t, Spec{Files: 50, Seed: 3})
	fs2, m2 := generate(t, Spec{Files: 50, Seed: 3})
	if m1.TotalBytes != m2.TotalBytes {
		t.Fatalf("TotalBytes differ: %d vs %d", m1.TotalBytes, m2.TotalBytes)
	}
	for i := range m1.Files {
		if m1.Files[i].Path != m2.Files[i].Path || m1.Files[i].Bytes != m2.Files[i].Bytes {
			t.Fatalf("file %d differs: %+v vs %+v", i, m1.Files[i], m2.Files[i])
		}
	}
	// Different seed differs.
	_, m3 := generate(t, Spec{Files: 50, Seed: 4})
	_ = fs2
	if m1.TotalBytes == m3.TotalBytes {
		t.Log("warning: different seeds produced equal byte totals (possible but unlikely)")
	}
}

func TestMarkerSelectivity(t *testing.T) {
	fs, m := generate(t, Spec{Files: 200, Seed: 1})
	few := m.MarkerFiles["markerfew"]
	mid := m.MarkerFiles["markermid"]
	many := m.MarkerFiles["markermany"]
	if len(few) != 1 { // ceil(0.002 * 200)
		t.Fatalf("markerfew in %d files, want 1", len(few))
	}
	if len(mid) != 20 {
		t.Fatalf("markermid in %d files, want 20", len(mid))
	}
	if len(many) != 120 {
		t.Fatalf("markermany in %d files, want 120", len(many))
	}
	// The marker actually appears in the named files.
	for _, p := range few {
		data, err := fs.ReadFile(p)
		if err != nil || !strings.Contains(string(data), "markerfew") {
			t.Fatalf("markerfew missing from %s", p)
		}
	}
	// And in no others.
	all, _ := vfs.Files(fs, "/corpus")
	fewSet := map[string]bool{}
	for _, p := range few {
		fewSet[p] = true
	}
	for _, p := range all {
		data, _ := fs.ReadFile(p)
		if strings.Contains(string(data), "markerfew") != fewSet[p] {
			t.Fatalf("markerfew membership mismatch at %s", p)
		}
	}
}

func TestTopicTerms(t *testing.T) {
	fs, m := generate(t, Spec{Files: 120, Topics: 4, Seed: 2})
	if len(m.TopicTerm) != 4 {
		t.Fatalf("TopicTerm len = %d", len(m.TopicTerm))
	}
	// Every file of topic 0 contains topic0key, and only those.
	topic0 := map[string]bool{}
	for _, p := range m.TopicFiles[0] {
		topic0[p] = true
	}
	all, _ := vfs.Files(fs, "/corpus")
	for _, p := range all {
		data, _ := fs.ReadFile(p)
		has := strings.Contains(string(data), m.TopicTerm[0])
		if has != topic0[p] {
			t.Fatalf("topic term membership mismatch at %s (has=%v, want=%v)", p, has, topic0[p])
		}
	}
}

func TestCustomMarkers(t *testing.T) {
	_, m := generate(t, Spec{
		Files:   50,
		Seed:    9,
		Markers: map[string]float64{"needle": 0.02},
	})
	if got := len(m.MarkerFiles["needle"]); got != 1 {
		t.Fatalf("needle count = %d, want 1", got)
	}
	if _, ok := m.MarkerFiles["markerfew"]; ok {
		t.Fatal("default markers present despite custom Markers")
	}
}

func TestKindsPresent(t *testing.T) {
	_, m := generate(t, Spec{Files: 90, Seed: 5})
	seen := map[Kind]int{}
	for _, f := range m.Files {
		seen[f.Kind]++
	}
	for _, k := range []Kind{KindNote, KindEmail, KindSource} {
		if seen[k] == 0 {
			t.Fatalf("no files of kind %v generated", k)
		}
	}
}

func TestDirSpread(t *testing.T) {
	fs, _ := generate(t, Spec{Files: 40, Dirs: 4, Seed: 6})
	entries, err := fs.ReadDir("/corpus")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 4 {
		t.Fatalf("corpus has %d dirs, want 4", len(entries))
	}
	for _, e := range entries {
		sub, _ := fs.ReadDir("/corpus/" + e.Name)
		if len(sub) != 10 {
			t.Fatalf("dir %s holds %d files, want 10", e.Name, len(sub))
		}
	}
}
