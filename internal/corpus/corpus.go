// Package corpus generates deterministic synthetic document trees. The
// paper's indexing and query experiments ran over a personal file system
// of ~17,000 files / ~150 MB; that data is not available, so this
// package produces a stand-in with the properties those experiments
// depend on:
//
//   - a Zipf-distributed background vocabulary, so posting lists have a
//     realistic skew;
//   - topic structure (each file samples from a few topic vocabularies),
//     so boolean queries have meaningful results;
//   - planted marker terms with controlled selectivity ("few",
//     "intermediate", "many" — the three query classes of Table 4);
//   - several document kinds (notes, email, source code), matching the
//     fingerprint running example of §2.1.
//
// Generation is a pure function of the Spec (including its Seed), so
// every experiment is reproducible.
package corpus

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"hacfs/internal/vfs"
)

// Kind labels the flavor of a generated document.
type Kind int

// Document kinds.
const (
	KindNote Kind = iota
	KindEmail
	KindSource
)

func (k Kind) String() string {
	switch k {
	case KindNote:
		return "note"
	case KindEmail:
		return "email"
	case KindSource:
		return "source"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Spec describes a corpus to generate.
type Spec struct {
	Files     int   // number of files (default 500)
	MeanWords int   // mean words per file (default 200)
	Topics    int   // number of topic vocabularies (default 8)
	Dirs      int   // number of directories to spread files over (default Files/25)
	Seed      int64 // PRNG seed (default 1)

	// Markers plants additional terms with fixed selectivity: each
	// entry (term → fraction) makes term appear in ⌈fraction·Files⌉
	// files. Defaults to the three Table-4 classes:
	// "markerfew" 0.002, "markermid" 0.10, "markermany" 0.60.
	Markers map[string]float64
}

func (s Spec) withDefaults() Spec {
	if s.Files <= 0 {
		s.Files = 500
	}
	if s.MeanWords <= 0 {
		s.MeanWords = 200
	}
	if s.Topics <= 0 {
		s.Topics = 8
	}
	if s.Dirs <= 0 {
		s.Dirs = s.Files / 25
		if s.Dirs < 1 {
			s.Dirs = 1
		}
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	if s.Markers == nil {
		s.Markers = map[string]float64{
			"markerfew":  0.002,
			"markermid":  0.10,
			"markermany": 0.60,
		}
	}
	return s
}

// FileMeta records what was generated for one file.
type FileMeta struct {
	Path   string
	Kind   Kind
	Topics []int
	Words  int
	Bytes  int
}

// Manifest is the result of Generate: everything an experiment needs to
// form queries with known answers.
type Manifest struct {
	Spec       Spec
	Files      []FileMeta
	TotalBytes int
	// TopicTerm[i] is a term that appears in every file of topic i and
	// in no file outside it.
	TopicTerm []string
	// MarkerFiles maps each planted marker term to the sorted list of
	// file paths that contain it.
	MarkerFiles map[string][]string
	// TopicFiles maps topic index to the sorted list of file paths
	// assigned to it.
	TopicFiles map[int][]string
}

// vocabulary builds a deterministic list of n pronounceable words.
func vocabulary(n int, prefix string) []string {
	syll := []string{
		"ba", "be", "bi", "bo", "bu", "da", "de", "di", "do", "du",
		"ka", "ke", "ki", "ko", "ku", "la", "le", "li", "lo", "lu",
		"ma", "me", "mi", "mo", "mu", "na", "ne", "ni", "no", "nu",
		"ra", "re", "ri", "ro", "ru", "sa", "se", "si", "so", "su",
		"ta", "te", "ti", "to", "tu", "za", "ze", "zi", "zo", "zu",
	}
	out := make([]string, n)
	for i := range out {
		var sb strings.Builder
		sb.WriteString(prefix)
		x := i
		for j := 0; j < 3; j++ {
			sb.WriteString(syll[x%len(syll)])
			x /= len(syll)
		}
		out[i] = sb.String()
	}
	return out
}

// zipfWord draws a word index with a Zipf-like distribution.
func zipfWord(rng *rand.Rand, n int) int {
	// Inverse-CDF approximation of Zipf s≈1: index ∝ exp(u·ln n).
	u := rng.Float64()
	i := int(float64(n) * u * u) // quadratic skew toward low indexes
	if i >= n {
		i = n - 1
	}
	return i
}

// Generate writes the corpus under root in fsys and returns its
// manifest. root must already exist.
func Generate(fsys vfs.FileSystem, root string, spec Spec) (*Manifest, error) {
	spec = spec.withDefaults()
	rng := rand.New(rand.NewSource(spec.Seed))

	background := vocabulary(2000, "w")
	topicVocab := make([][]string, spec.Topics)
	topicTerm := make([]string, spec.Topics)
	for i := range topicVocab {
		topicVocab[i] = vocabulary(60, fmt.Sprintf("t%d", i))
		topicTerm[i] = fmt.Sprintf("topic%dkey", i)
	}

	// Decide marker membership up front so counts are exact.
	markerMember := make(map[string]map[int]bool, len(spec.Markers))
	markerTerms := make([]string, 0, len(spec.Markers))
	for term := range spec.Markers {
		markerTerms = append(markerTerms, term)
	}
	sort.Strings(markerTerms) // deterministic iteration
	for _, term := range markerTerms {
		frac := spec.Markers[term]
		count := int(frac*float64(spec.Files) + 0.999999)
		if count > spec.Files {
			count = spec.Files
		}
		if count < 1 && frac > 0 {
			count = 1
		}
		perm := rng.Perm(spec.Files)[:count]
		set := make(map[int]bool, count)
		for _, idx := range perm {
			set[idx] = true
		}
		markerMember[term] = set
	}

	m := &Manifest{
		Spec:        spec,
		TopicTerm:   topicTerm,
		MarkerFiles: make(map[string][]string),
		TopicFiles:  make(map[int][]string),
	}

	for d := 0; d < spec.Dirs; d++ {
		if err := fsys.MkdirAll(vfs.Join(root, fmt.Sprintf("dir%03d", d))); err != nil {
			return nil, err
		}
	}

	for i := 0; i < spec.Files; i++ {
		kind := Kind(rng.Intn(3))
		nTopics := 1 + rng.Intn(2)
		topics := make([]int, 0, nTopics)
		seen := map[int]bool{}
		for len(topics) < nTopics {
			ti := rng.Intn(spec.Topics)
			if !seen[ti] {
				seen[ti] = true
				topics = append(topics, ti)
			}
		}
		sort.Ints(topics)

		words := spec.MeanWords/2 + rng.Intn(spec.MeanWords+1)
		var sb strings.Builder
		writeHeader(&sb, kind, i, rng)
		for w := 0; w < words; w++ {
			switch {
			case rng.Intn(4) == 0: // topic word
				tv := topicVocab[topics[rng.Intn(len(topics))]]
				sb.WriteString(tv[rng.Intn(len(tv))])
			default:
				sb.WriteString(background[zipfWord(rng, len(background))])
			}
			if w%12 == 11 {
				sb.WriteByte('\n')
			} else {
				sb.WriteByte(' ')
			}
		}
		// Topic terms: guarantee exact topic membership semantics.
		for _, ti := range topics {
			sb.WriteString(topicTerm[ti])
			sb.WriteByte(' ')
		}
		// Planted markers.
		for _, term := range markerTerms {
			if markerMember[term][i] {
				sb.WriteString(term)
				sb.WriteByte(' ')
			}
		}
		sb.WriteByte('\n')

		dir := fmt.Sprintf("dir%03d", i%spec.Dirs)
		name := fmt.Sprintf("%s%05d.%s", kind, i, ext(kind))
		p := vfs.Join(root, dir, name)
		data := sb.String()
		if err := fsys.WriteFile(p, []byte(data)); err != nil {
			return nil, err
		}

		meta := FileMeta{Path: p, Kind: kind, Topics: topics, Words: words, Bytes: len(data)}
		m.Files = append(m.Files, meta)
		m.TotalBytes += len(data)
		for _, ti := range topics {
			m.TopicFiles[ti] = append(m.TopicFiles[ti], p)
		}
		for _, term := range markerTerms {
			if markerMember[term][i] {
				m.MarkerFiles[term] = append(m.MarkerFiles[term], p)
			}
		}
	}
	for term := range m.MarkerFiles {
		sort.Strings(m.MarkerFiles[term])
	}
	for ti := range m.TopicFiles {
		sort.Strings(m.TopicFiles[ti])
	}
	return m, nil
}

func ext(k Kind) string {
	switch k {
	case KindEmail:
		return "eml"
	case KindSource:
		return "c"
	default:
		return "txt"
	}
}

var people = []string{"alice", "bob", "carol", "dave", "erin", "frank", "grace", "heidi"}

func writeHeader(sb *strings.Builder, k Kind, i int, rng *rand.Rand) {
	switch k {
	case KindEmail:
		from := people[rng.Intn(len(people))]
		to := people[rng.Intn(len(people))]
		fmt.Fprintf(sb, "from %s\nto %s\nsubject message %d\n\n", from, to, i)
	case KindSource:
		fmt.Fprintf(sb, "// file %d\n#include stdio\nint main() {\n", i)
	default:
		fmt.Fprintf(sb, "note %d\n", i)
	}
}
