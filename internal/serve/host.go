// Package serve hosts multiple isolated HAC volumes in one process —
// the multi-tenant serving layer between the wire protocols
// (internal/remote, internal/remotefs) and the volumes themselves
// (DESIGN.md §12). It enforces per-tenant quotas (bytes, documents,
// in-flight requests), admits requests through a round-robin fair
// scheduler so no tenant can starve the others, exports per-tenant
// metrics, and coordinates graceful shutdown: drain in-flight work,
// checkpoint every volume, refuse newcomers.
package serve

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"hacfs/internal/hac"
	"hacfs/internal/obs"
	"hacfs/internal/vfs"
	"hacfs/internal/vfs/cas"
)

// tenantMetrics is one tenant's labeled series.
type tenantMetrics struct {
	requests     *obs.Counter   // serve_requests_total{tenant}
	rejectBP     *obs.Counter   // serve_rejects_total{tenant,reason=backpressure}
	rejectQuota  *obs.Counter   // serve_rejects_total{tenant,reason=quota}
	rejectDrain  *obs.Counter   // serve_rejects_total{tenant,reason=shutdown}
	inflight     *obs.Gauge     // serve_inflight{tenant}
	admitSeconds *obs.Histogram // serve_admit_wait_seconds{tenant}
}

// tenant is one hosted volume plus its quota state.
type tenant struct {
	name     string
	fs       *hac.FS
	qfs      *quotaFS // what Volume returns; enforces byte/doc quotas
	quota    Quota
	savePath string // checkpoint target; "" = not persisted

	u        usage
	inflight int64       // guarded by Host.mu
	slo      *sloTracker // guarded by Host.mu; nil = no objective
	met      tenantMetrics
}

// Host implements remotefs.Volumes over a set of named tenants.
type Host struct {
	obsv  *obs.Observer
	sched *scheduler

	mu       sync.Mutex
	tenants  map[string]*tenant
	def      string // tenant served to clients that name none
	draining bool
	idle     *sync.Cond // signaled when total in-flight drops to zero
	total    int64      // in-flight across all tenants
}

// NewHost returns an empty host. workers caps concurrently executing
// requests across all tenants (<= 0 picks a CPU-scaled default);
// o receives the per-tenant series (nil = obs.Default()).
func NewHost(workers int, o *obs.Observer) *Host {
	if o == nil {
		o = obs.Default()
	}
	h := &Host{obsv: o, sched: newScheduler(workers), tenants: make(map[string]*tenant)}
	h.idle = sync.NewCond(&h.mu)
	return h
}

// AddTenant registers a volume under name. savePath, when non-empty,
// is where Checkpoint atomically saves the volume (SaveVolumeFile).
// Current usage is recounted from the volume so quotas apply to
// pre-existing content.
func (h *Host) AddTenant(name string, fsys *hac.FS, q Quota, savePath string) error {
	if name == "" {
		return fmt.Errorf("serve: empty tenant name")
	}
	r := h.obsv.Registry()
	t := &tenant{
		name:     name,
		fs:       fsys,
		quota:    q,
		savePath: savePath,
		met: tenantMetrics{
			requests:     r.Counter("serve_requests_total", "tenant", name),
			rejectBP:     r.Counter("serve_rejects_total", "tenant", name, "reason", "backpressure"),
			rejectQuota:  r.Counter("serve_rejects_total", "tenant", name, "reason", "quota"),
			rejectDrain:  r.Counter("serve_rejects_total", "tenant", name, "reason", "shutdown"),
			inflight:     r.Gauge("serve_inflight", "tenant", name),
			admitSeconds: r.Histogram("serve_admit_wait_seconds", nil, "tenant", name),
		},
	}
	t.qfs = &quotaFS{inner: fsys, q: q, u: &t.u, met: &t.met}
	if cfs := casSubstrateOf(fsys); cfs != nil {
		// Content-addressed volume: quotas charge measured unique bytes
		// (identical content across tenants of a shared store is paid
		// for once), and the store's cas_* gauges join the scrape.
		t.qfs.store = cfs.Store()
		cfs.Store().PublishMetrics(r)
		recountCAS(cfs, &t.u)
	} else if err := recount(fsys, &t.u); err != nil {
		return fmt.Errorf("serve: recount %s: %w", name, err)
	}
	r.GaugeFunc("serve_used_bytes", func() float64 {
		t.u.mu.Lock()
		defer t.u.mu.Unlock()
		return float64(t.u.bytes)
	}, "tenant", name)
	r.GaugeFunc("serve_used_docs", func() float64 {
		t.u.mu.Lock()
		defer t.u.mu.Unlock()
		return float64(t.u.docs)
	}, "tenant", name)

	h.mu.Lock()
	defer h.mu.Unlock()
	if _, dup := h.tenants[name]; dup {
		return fmt.Errorf("serve: duplicate tenant %q", name)
	}
	h.tenants[name] = t
	return nil
}

// casSubstrateOf unwraps a volume's layering (a HAC layer, fault
// injection) down to a content-addressed substrate, or nil.
func casSubstrateOf(fsys vfs.FileSystem) *cas.FS {
	for {
		if c, ok := fsys.(*cas.FS); ok {
			return c
		}
		u, ok := fsys.(interface{ Under() vfs.FileSystem })
		if !ok {
			return nil
		}
		fsys = u.Under()
	}
}

// recountCAS resets accounted usage from the substrate manifest:
// every file is a doc, but bytes count each distinct content hash
// once — the tenant's self-deduplicated footprint. Cross-tenant
// sharing in a common store is credited to writes as they happen, not
// re-attributed at load.
func recountCAS(cfs *cas.FS, u *usage) {
	m := cfs.Manifest()
	seen := make(map[cas.Hash]bool, len(m.Entries))
	var bytes, docs int64
	for _, e := range m.Entries {
		if e.Type != vfs.TypeFile {
			continue
		}
		docs++
		if !seen[e.Hash] {
			seen[e.Hash] = true
			bytes += e.Size
		}
	}
	u.mu.Lock()
	u.bytes, u.docs = bytes, docs
	u.mu.Unlock()
}

// recount walks the volume and resets accounted usage to what is
// actually there.
func recount(fsys vfs.FileSystem, u *usage) error {
	var bytes, docs int64
	err := vfs.Walk(fsys, "/", func(p string, info vfs.Info) error {
		if info.Type == vfs.TypeFile {
			bytes += info.Size
			docs++
		}
		return nil
	})
	if err != nil {
		return err
	}
	u.mu.Lock()
	u.bytes, u.docs = bytes, docs
	u.mu.Unlock()
	return nil
}

// SetDefault routes requests that name no tenant (legacy clients, the
// empty tenant) to the named one.
func (h *Host) SetDefault(name string) {
	h.mu.Lock()
	h.def = name
	h.mu.Unlock()
}

// resolveLocked maps the empty tenant to the default, if one is set.
func (h *Host) resolveLocked(name string) string {
	if name == "" {
		return h.def
	}
	return name
}

// Tenants returns the registered tenant names, sorted.
func (h *Host) Tenants() []string {
	h.mu.Lock()
	defer h.mu.Unlock()
	names := make([]string, 0, len(h.tenants))
	for name := range h.tenants {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Usage returns a tenant's accounted footprint.
func (h *Host) Usage(name string) (bytes, docs int64, err error) {
	h.mu.Lock()
	t, ok := h.tenants[name]
	h.mu.Unlock()
	if !ok {
		return 0, 0, &vfs.PathError{Op: "usage", Path: "/" + name, Err: vfs.ErrNotExist}
	}
	t.u.mu.Lock()
	defer t.u.mu.Unlock()
	return t.u.bytes, t.u.docs, nil
}

// Volume implements remotefs.Volumes: the quota-enforcing view of the
// named tenant's file system.
func (h *Host) Volume(name string) (vfs.FileSystem, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	t, ok := h.tenants[h.resolveLocked(name)]
	if !ok {
		return nil, &vfs.PathError{Op: "volume", Path: "/" + name, Err: vfs.ErrNotExist}
	}
	return t.qfs, nil
}

// Admit implements remotefs.Volumes: admission control for one
// request. Unknown tenants and a draining host reject immediately; a
// tenant over its in-flight limit gets typed backpressure (retry
// later, do not queue); otherwise the request waits for a fair
// scheduler slot.
func (h *Host) Admit(name, op string) (func(), error) {
	h.mu.Lock()
	name = h.resolveLocked(name)
	t, ok := h.tenants[name]
	if !ok {
		h.mu.Unlock()
		return nil, &vfs.PathError{Op: "admit", Path: "/" + name, Err: vfs.ErrNotExist}
	}
	if h.draining {
		h.mu.Unlock()
		t.met.rejectDrain.Inc()
		return nil, &vfs.PathError{Op: op, Path: "/" + name, Err: vfs.ErrShuttingDown}
	}
	if t.quota.MaxInflight > 0 && t.inflight >= t.quota.MaxInflight {
		h.mu.Unlock()
		t.met.rejectBP.Inc()
		return nil, &vfs.PathError{Op: op, Path: "/" + name, Err: vfs.ErrBackpressure}
	}
	t.inflight++
	h.total++
	slo := t.slo
	h.mu.Unlock()
	t.met.inflight.Add(1)

	start := time.Now()
	h.sched.acquire(name)
	t.met.admitSeconds.ObserveSince(start)
	t.met.requests.Inc()

	// SLO latency runs admission to release: scheduler wait is already
	// behind us (it has its own histogram), execution time is what the
	// release closure sees.
	opStart := time.Now()
	var once sync.Once
	return func() {
		once.Do(func() {
			slo.record(time.Since(opStart))
			h.sched.release()
			t.met.inflight.Add(-1)
			h.mu.Lock()
			t.inflight--
			h.total--
			if h.total == 0 {
				h.idle.Broadcast()
			}
			h.mu.Unlock()
		})
	}, nil
}

// Drain flips the host into shutdown mode — every new Admit fails with
// vfs.ErrShuttingDown — and waits for in-flight requests to finish, or
// for ctx to expire.
func (h *Host) Drain(ctx context.Context) error {
	h.mu.Lock()
	h.draining = true
	h.mu.Unlock()

	done := make(chan struct{})
	go func() {
		h.mu.Lock()
		for h.total != 0 {
			h.idle.Wait()
		}
		h.mu.Unlock()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		// Wake the waiter goroutine so it does not leak once the last
		// request eventually finishes.
		h.mu.Lock()
		h.idle.Broadcast()
		h.mu.Unlock()
		return ctx.Err()
	}
}

// Checkpoint atomically saves every tenant volume that has a save
// path, returning the first error (but attempting all).
func (h *Host) Checkpoint() error {
	h.mu.Lock()
	tenants := make([]*tenant, 0, len(h.tenants))
	for _, t := range h.tenants {
		tenants = append(tenants, t)
	}
	h.mu.Unlock()
	var firstErr error
	for _, t := range tenants {
		if t.savePath == "" {
			continue
		}
		if err := t.fs.SaveVolumeFile(t.savePath); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("serve: checkpoint %s: %w", t.name, err)
		}
	}
	return firstErr
}
