package serve

import (
	"runtime"
	"sync"
)

// scheduler is the fair admission gate: a fixed pool of execution
// slots, granted round-robin across tenants. Each tenant has its own
// FIFO wait queue; when a slot frees, the grant goes to the next
// tenant in rotation that has a waiter, so a tenant flooding the
// server with requests queues behind its own backlog instead of
// starving the others — the same cooperative-sharing idea the
// compaction engine uses for index merges, applied to request
// admission.
type scheduler struct {
	mu      sync.Mutex
	cap     int
	running int
	queues  map[string][]chan struct{} // per-tenant FIFO of waiters
	order   []string                   // rotation of tenants with waiters
	next    int                        // rotation cursor
}

func newScheduler(cap int) *scheduler {
	if cap <= 0 {
		cap = 4 * runtime.GOMAXPROCS(0)
	}
	return &scheduler{cap: cap, queues: make(map[string][]chan struct{})}
}

// acquire blocks until the tenant is granted an execution slot.
func (s *scheduler) acquire(tenant string) {
	s.mu.Lock()
	// Jump the queue only when there is truly no one waiting; otherwise
	// a fast-arriving tenant would starve the rotation.
	if s.running < s.cap && len(s.order) == 0 {
		s.running++
		s.mu.Unlock()
		return
	}
	ch := make(chan struct{})
	if _, ok := s.queues[tenant]; !ok {
		s.order = append(s.order, tenant)
	}
	s.queues[tenant] = append(s.queues[tenant], ch)
	s.mu.Unlock()
	<-ch
}

// release returns a slot, handing it to the next waiting tenant in
// rotation if any, and yields the processor so the woken request gets
// to run promptly.
func (s *scheduler) release() {
	s.mu.Lock()
	if len(s.order) == 0 {
		s.running--
		s.mu.Unlock()
		return
	}
	// Round-robin: grant to the next tenant with a waiter. The slot
	// transfers directly, so running stays constant.
	s.next %= len(s.order)
	tenant := s.order[s.next]
	q := s.queues[tenant]
	ch := q[0]
	if len(q) == 1 {
		delete(s.queues, tenant)
		s.order = append(s.order[:s.next], s.order[s.next+1:]...)
		// next now points at the following tenant already.
	} else {
		s.queues[tenant] = q[1:]
		s.next++
	}
	s.mu.Unlock()
	close(ch)
	runtime.Gosched()
}
