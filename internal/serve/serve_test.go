package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"hacfs/internal/hac"
	"hacfs/internal/obs"
	"hacfs/internal/vfs"
)

func newTestHost(t *testing.T, workers int) (*Host, *obs.Observer) {
	t.Helper()
	o := obs.NewObserver()
	return NewHost(workers, o), o
}

func addTenant(t *testing.T, h *Host, name string, q Quota) *hac.FS {
	t.Helper()
	hfs := hac.New(vfs.New(), hac.Options{})
	if err := h.AddTenant(name, hfs, q, ""); err != nil {
		t.Fatal(err)
	}
	return hfs
}

// TestQuotaTable drives the byte/doc quota through its edge cases.
func TestQuotaTable(t *testing.T) {
	tests := []struct {
		name  string
		quota Quota
		run   func(fsys vfs.FileSystem) error
		want  error // nil = must succeed
	}{
		{
			name:  "bytes within quota",
			quota: Quota{MaxBytes: 10},
			run:   func(f vfs.FileSystem) error { return f.WriteFile("/a", make([]byte, 10)) },
		},
		{
			name:  "bytes over quota",
			quota: Quota{MaxBytes: 10},
			run:   func(f vfs.FileSystem) error { return f.WriteFile("/a", make([]byte, 11)) },
			want:  vfs.ErrQuotaExceeded,
		},
		{
			name:  "overwrite charges the delta, not the sum",
			quota: Quota{MaxBytes: 10},
			run: func(f vfs.FileSystem) error {
				if err := f.WriteFile("/a", make([]byte, 8)); err != nil {
					return err
				}
				return f.WriteFile("/a", make([]byte, 10)) // delta +2, fits
			},
		},
		{
			name:  "second file over quota",
			quota: Quota{MaxBytes: 10},
			run: func(f vfs.FileSystem) error {
				if err := f.WriteFile("/a", make([]byte, 8)); err != nil {
					return err
				}
				return f.WriteFile("/b", make([]byte, 3))
			},
			want: vfs.ErrQuotaExceeded,
		},
		{
			name:  "remove frees bytes",
			quota: Quota{MaxBytes: 10},
			run: func(f vfs.FileSystem) error {
				if err := f.WriteFile("/a", make([]byte, 8)); err != nil {
					return err
				}
				if err := f.Remove("/a"); err != nil {
					return err
				}
				return f.WriteFile("/b", make([]byte, 10))
			},
		},
		{
			name:  "docs within quota",
			quota: Quota{MaxDocs: 2},
			run: func(f vfs.FileSystem) error {
				if err := f.WriteFile("/a", []byte("x")); err != nil {
					return err
				}
				return f.WriteFile("/b", []byte("y"))
			},
		},
		{
			name:  "docs over quota",
			quota: Quota{MaxDocs: 2},
			run: func(f vfs.FileSystem) error {
				if err := f.WriteFile("/a", []byte("x")); err != nil {
					return err
				}
				if err := f.WriteFile("/b", []byte("y")); err != nil {
					return err
				}
				return f.WriteFile("/c", []byte("z"))
			},
			want: vfs.ErrQuotaExceeded,
		},
		{
			name:  "create counts a doc",
			quota: Quota{MaxDocs: 1},
			run: func(f vfs.FileSystem) error {
				if err := f.WriteFile("/a", []byte("x")); err != nil {
					return err
				}
				_, err := f.Create("/b")
				return err
			},
			want: vfs.ErrQuotaExceeded,
		},
		{
			name:  "handle write over quota",
			quota: Quota{MaxBytes: 4},
			run: func(f vfs.FileSystem) error {
				h, err := f.Create("/a")
				if err != nil {
					return err
				}
				defer h.Close()
				if _, err := h.Write([]byte("1234")); err != nil {
					return err
				}
				_, err = h.Write([]byte("5"))
				return err
			},
			want: vfs.ErrQuotaExceeded,
		},
		{
			name:  "truncate growth over quota",
			quota: Quota{MaxBytes: 4},
			run: func(f vfs.FileSystem) error {
				h, err := f.Create("/a")
				if err != nil {
					return err
				}
				defer h.Close()
				return h.Truncate(5)
			},
			want: vfs.ErrQuotaExceeded,
		},
		{
			name:  "removeall frees a subtree",
			quota: Quota{MaxBytes: 10, MaxDocs: 4},
			run: func(f vfs.FileSystem) error {
				if err := f.MkdirAll("/d"); err != nil {
					return err
				}
				for i := 0; i < 4; i++ {
					if err := f.WriteFile(fmt.Sprintf("/d/f%d", i), []byte("ab")); err != nil {
						return err
					}
				}
				if err := f.RemoveAll("/d"); err != nil {
					return err
				}
				return f.WriteFile("/fresh", make([]byte, 10))
			},
		},
		{
			name:  "unlimited quota never rejects",
			quota: Quota{},
			run:   func(f vfs.FileSystem) error { return f.WriteFile("/a", make([]byte, 1<<20)) },
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			h, _ := newTestHost(t, 4)
			addTenant(t, h, "t", tc.quota)
			fsys, err := h.Volume("t")
			if err != nil {
				t.Fatal(err)
			}
			err = tc.run(fsys)
			if tc.want == nil {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			var pe *vfs.PathError
			if !errors.As(err, &pe) || !errors.Is(err, tc.want) {
				t.Fatalf("error = %v, want PathError{%v}", err, tc.want)
			}
		})
	}
}

// TestQuotaCountersMatchOracle checks the accounted usage (what the
// /metrics gauges export) against a from-scratch recount after a
// mixed workload, including failed operations.
func TestQuotaCountersMatchOracle(t *testing.T) {
	h, o := newTestHost(t, 4)
	hfs := addTenant(t, h, "t", Quota{MaxBytes: 1 << 16, MaxDocs: 100})
	fsys, err := h.Volume("t")
	if err != nil {
		t.Fatal(err)
	}
	if err := fsys.MkdirAll("/d"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := fsys.WriteFile(fmt.Sprintf("/d/f%d", i), make([]byte, 100+i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		if err := fsys.Remove(fmt.Sprintf("/d/f%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := fsys.WriteFile("/d/f7", make([]byte, 5000)); err != nil { // overwrite
		t.Fatal(err)
	}
	f, err := fsys.OpenFile("/d/f8", vfs.OWrite)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt(make([]byte, 300), 50); err != nil {
		t.Fatal(err)
	}
	if err := f.Truncate(120); err != nil {
		t.Fatal(err)
	}
	f.Close()
	// A rejected write must not change the accounting.
	if err := fsys.WriteFile("/d/huge", make([]byte, 1<<20)); !errors.Is(err, vfs.ErrQuotaExceeded) {
		t.Fatalf("huge write = %v, want quota error", err)
	}

	var oracleBytes, oracleDocs int64
	if err := vfs.Walk(hfs, "/", func(p string, info vfs.Info) error {
		if info.Type == vfs.TypeFile {
			oracleBytes += info.Size
			oracleDocs++
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	gotBytes, gotDocs, err := h.Usage("t")
	if err != nil {
		t.Fatal(err)
	}
	if gotBytes != oracleBytes || gotDocs != oracleDocs {
		t.Fatalf("accounted usage = %d bytes / %d docs, recount says %d / %d",
			gotBytes, gotDocs, oracleBytes, oracleDocs)
	}
	// The same numbers flow out of the metrics registry.
	snap := o.Registry().Snapshot()
	if got := snap[`serve_used_bytes{tenant="t"}`]; int64(got) != oracleBytes {
		t.Fatalf("metric used_bytes = %v, oracle %d", got, oracleBytes)
	}
	if got := snap[`serve_used_docs{tenant="t"}`]; int64(got) != oracleDocs {
		t.Fatalf("metric used_docs = %v, oracle %d", got, oracleDocs)
	}
	if got := snap[`serve_rejects_total{reason="quota",tenant="t"}`]; got < 1 {
		t.Fatalf("metric rejects{quota} = %v, want >= 1", got)
	}
}

// TestRecountAppliesToExistingContent checks quotas bind content that
// predates AddTenant.
func TestRecountAppliesToExistingContent(t *testing.T) {
	hfs := hac.New(vfs.New(), hac.Options{})
	if err := hfs.WriteFile("/old", make([]byte, 90)); err != nil {
		t.Fatal(err)
	}
	h, _ := newTestHost(t, 4)
	if err := h.AddTenant("t", hfs, Quota{MaxBytes: 100}, ""); err != nil {
		t.Fatal(err)
	}
	fsys, _ := h.Volume("t")
	if err := fsys.WriteFile("/new", make([]byte, 20)); !errors.Is(err, vfs.ErrQuotaExceeded) {
		t.Fatalf("write past preexisting usage = %v, want quota error", err)
	}
	if err := fsys.WriteFile("/new", make([]byte, 10)); err != nil {
		t.Fatal(err)
	}
}

// TestAdmission drives backpressure, unknown tenants and drain
// rejection through Admit.
func TestAdmission(t *testing.T) {
	h, o := newTestHost(t, 8)
	addTenant(t, h, "a", Quota{MaxInflight: 2})
	addTenant(t, h, "b", Quota{})

	if _, err := h.Admit("nope", "stat"); !errors.Is(err, vfs.ErrNotExist) {
		t.Fatalf("unknown tenant = %v, want ErrNotExist", err)
	}

	r1, err := h.Admit("a", "stat")
	if err != nil {
		t.Fatal(err)
	}
	r2, err := h.Admit("a", "stat")
	if err != nil {
		t.Fatal(err)
	}
	// Third concurrent op for tenant a: typed backpressure, immediately.
	_, err = h.Admit("a", "stat")
	var pe *vfs.PathError
	if !errors.As(err, &pe) || !errors.Is(err, vfs.ErrBackpressure) {
		t.Fatalf("over-inflight admit = %v, want PathError{ErrBackpressure}", err)
	}
	// Tenant b is unaffected by a's limit.
	rb, err := h.Admit("b", "stat")
	if err != nil {
		t.Fatalf("other tenant blocked: %v", err)
	}
	rb()
	r1()
	r1() // release is idempotent
	r3, err := h.Admit("a", "stat")
	if err != nil {
		t.Fatalf("admit after release = %v", err)
	}
	r3()
	r2()

	// Drain: everyone is rejected with the shutdown sentinel.
	if err := h.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Admit("a", "stat"); !errors.Is(err, vfs.ErrShuttingDown) {
		t.Fatalf("admit while draining = %v, want ErrShuttingDown", err)
	}

	snap := o.Registry().Snapshot()
	if got := snap[`serve_rejects_total{reason="backpressure",tenant="a"}`]; got != 1 {
		t.Fatalf("backpressure rejects = %v, want 1", got)
	}
	if got := snap[`serve_rejects_total{reason="shutdown",tenant="a"}`]; got != 1 {
		t.Fatalf("shutdown rejects = %v, want 1", got)
	}
	if got := snap[`serve_requests_total{tenant="a"}`]; got != 3 {
		t.Fatalf("requests = %v, want 3", got)
	}
	if got := snap[`serve_inflight{tenant="a"}`]; got != 0 {
		t.Fatalf("inflight after releases = %v, want 0", got)
	}
}

// TestDrainWaitsForInflight checks Drain blocks until releases land,
// and times out on a stuck request.
func TestDrainWaitsForInflight(t *testing.T) {
	h, _ := newTestHost(t, 4)
	addTenant(t, h, "a", Quota{})
	release, err := h.Admit("a", "stat")
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := h.Drain(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("drain with stuck request = %v, want deadline", err)
	}

	done := make(chan error, 1)
	go func() { done <- h.Drain(context.Background()) }()
	time.Sleep(10 * time.Millisecond)
	release()
	if err := <-done; err != nil {
		t.Fatalf("drain after release = %v", err)
	}
}

// TestFairSchedulingNoStarvation floods the host from one greedy
// tenant while a modest tenant trickles requests; round-robin grants
// must keep the modest tenant's work flowing.
func TestFairSchedulingNoStarvation(t *testing.T) {
	h, _ := newTestHost(t, 2) // tiny worker pool to force queueing
	addTenant(t, h, "greedy", Quota{})
	addTenant(t, h, "modest", Quota{})

	stop := make(chan struct{})
	var wg sync.WaitGroup
	// Greedy: 8 spinning requesters.
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				release, err := h.Admit("greedy", "stat")
				if err == nil {
					time.Sleep(100 * time.Microsecond)
					release()
				}
			}
		}()
	}
	// Modest: sequential requests; count how many finish in the window.
	deadline := time.Now().Add(300 * time.Millisecond)
	var served int
	for time.Now().Before(deadline) {
		release, err := h.Admit("modest", "stat")
		if err != nil {
			t.Fatal(err)
		}
		release()
		served++
	}
	close(stop)
	wg.Wait()
	// Hundreds are expected; single digits would mean starvation.
	if served < 20 {
		t.Fatalf("modest tenant served %d requests under flood, starved", served)
	}
}

// TestCheckpointAndRecover saves hosted volumes and reloads them —
// the recovery half of graceful shutdown.
func TestCheckpointAndRecover(t *testing.T) {
	dir := t.TempDir()
	h, _ := newTestHost(t, 4)
	hfs := hac.New(vfs.New(), hac.Options{})
	if err := h.AddTenant("t", hfs, Quota{}, dir+"/t.hac"); err != nil {
		t.Fatal(err)
	}
	fsys, _ := h.Volume("t")
	if err := fsys.WriteFile("/doc.txt", []byte("fingerprint archive")); err != nil {
		t.Fatal(err)
	}
	if _, err := hfs.Reindex("/"); err != nil {
		t.Fatal(err)
	}
	if err := h.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := h.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	loaded, err := hac.LoadVolumeFile(dir+"/t.hac", hac.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if data, err := loaded.ReadFile("/doc.txt"); err != nil || string(data) != "fingerprint archive" {
		t.Fatalf("recovered read = %q, %v", data, err)
	}
	if _, err := loaded.Reindex("/"); err != nil {
		t.Fatal(err)
	}
	if paths, err := loaded.SearchPaths("fingerprint", "/"); err != nil || len(paths) != 1 {
		t.Fatalf("recovered search = %v, %v", paths, err)
	}
}
