package serve

import (
	"bytes"
	"errors"
	"testing"

	"hacfs/internal/hac"
	"hacfs/internal/vfs"
	"hacfs/internal/vfs/cas"
)

// addCASTenant registers a HAC volume over a cas substrate sharing the
// given store.
func addCASTenant(t *testing.T, h *Host, name string, store *cas.BlobStore, q Quota) vfs.FileSystem {
	t.Helper()
	hfs := hac.New(cas.New(store), hac.Options{})
	if err := h.AddTenant(name, hfs, q, ""); err != nil {
		t.Fatal(err)
	}
	fsys, err := h.Volume(name)
	if err != nil {
		t.Fatal(err)
	}
	return fsys
}

func usageOf(t *testing.T, h *Host, name string) (int64, int64) {
	t.Helper()
	b, d, err := h.Usage(name)
	if err != nil {
		t.Fatal(err)
	}
	return b, d
}

// Two tenants of one shared store writing identical content pay for it
// once: the writer of the first copy is charged, the duplicate is free,
// and the sum of accounted usage tracks the store's unique bytes.
func TestCASQuotaDedupAcrossTenants(t *testing.T) {
	h, _ := newTestHost(t, 2)
	shared := cas.NewStore()
	a := addCASTenant(t, h, "alice", shared, Quota{})
	b := addCASTenant(t, h, "bob", shared, Quota{})

	content := bytes.Repeat([]byte("shared corpus "), 300)
	if err := a.WriteFile("/doc.txt", content); err != nil {
		t.Fatal(err)
	}
	if err := b.WriteFile("/copy.txt", content); err != nil {
		t.Fatal(err)
	}
	ab, _ := usageOf(t, h, "alice")
	bb, _ := usageOf(t, h, "bob")
	if ab != int64(len(content)) {
		t.Fatalf("alice charged %d, want %d", ab, len(content))
	}
	if bb != 0 {
		t.Fatalf("bob charged %d for duplicate content, want 0", bb)
	}
	if got := shared.UniqueBytes(); ab+bb != got {
		t.Fatalf("tenant usage sums to %d, store holds %d unique bytes", ab+bb, got)
	}

	// Distinct content is charged in full to its writer.
	other := bytes.Repeat([]byte("bob's own "), 100)
	if err := b.WriteFile("/own.txt", other); err != nil {
		t.Fatal(err)
	}
	bb, bd := usageOf(t, h, "bob")
	if bb != int64(len(other)) {
		t.Fatalf("bob charged %d, want %d", bb, len(other))
	}
	if bd != 2 {
		t.Fatalf("bob docs = %d, want 2", bd)
	}
}

// The conservation invariant: through writes, overwrites, and removals
// of shared content, the tenants' accounted bytes always sum to the
// store's unique bytes.
func TestCASQuotaConservation(t *testing.T) {
	h, _ := newTestHost(t, 2)
	shared := cas.NewStore()
	a := addCASTenant(t, h, "alice", shared, Quota{})
	b := addCASTenant(t, h, "bob", shared, Quota{})

	check := func(step string) {
		t.Helper()
		ab, _ := usageOf(t, h, "alice")
		bb, _ := usageOf(t, h, "bob")
		if got := shared.UniqueBytes(); ab+bb != got {
			t.Fatalf("%s: usage sums to %d, store holds %d", step, ab+bb, got)
		}
	}
	x := bytes.Repeat([]byte("x"), 2048)
	y := bytes.Repeat([]byte("y"), 512)
	if err := a.WriteFile("/x.bin", x); err != nil {
		t.Fatal(err)
	}
	check("alice writes x")
	if err := b.WriteFile("/x.bin", x); err != nil {
		t.Fatal(err)
	}
	check("bob duplicates x")
	if err := a.WriteFile("/x.bin", y); err != nil {
		t.Fatal(err)
	}
	check("alice overwrites with y")
	if err := b.Remove("/x.bin"); err != nil {
		t.Fatal(err)
	}
	check("bob removes the last x")
	if err := a.Remove("/x.bin"); err != nil {
		t.Fatal(err)
	}
	check("alice removes y")
}

// A duplicate of content the store already holds fits in a quota sized
// for a single copy; genuinely new content over quota still rejects.
func TestCASQuotaAdmitsDedupHit(t *testing.T) {
	h, _ := newTestHost(t, 2)
	shared := cas.NewStore()
	content := bytes.Repeat([]byte("z"), 4096)
	a := addCASTenant(t, h, "alice", shared, Quota{MaxBytes: int64(len(content))})
	b := addCASTenant(t, h, "bob", shared, Quota{MaxBytes: 64})

	if err := a.WriteFile("/z.bin", content); err != nil {
		t.Fatal(err)
	}
	// Bob's quota could never hold 4096 fresh bytes, but the store
	// already has them.
	if err := b.WriteFile("/mirror.bin", content); err != nil {
		t.Fatalf("dedup hit rejected: %v", err)
	}
	if err := b.WriteFile("/new.bin", bytes.Repeat([]byte("w"), 65)); err == nil {
		t.Fatal("unique content over quota accepted")
	} else if !errors.Is(err, vfs.ErrQuotaExceeded) {
		t.Fatalf("err = %v, want ErrQuotaExceeded", err)
	}
}

// Handle writes are charged when Close seals the buffer into the
// store — and sealing duplicate content costs nothing.
func TestCASQuotaHandleWritesChargeAtSeal(t *testing.T) {
	h, _ := newTestHost(t, 2)
	shared := cas.NewStore()
	a := addCASTenant(t, h, "alice", shared, Quota{})

	content := bytes.Repeat([]byte("handle"), 200)
	for i, path := range []string{"/one.bin", "/two.bin"} {
		f, err := a.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Write(content); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		ab, _ := usageOf(t, h, "alice")
		if ab != int64(len(content)) {
			t.Fatalf("after file %d: charged %d, want %d", i+1, ab, len(content))
		}
	}
}

// AddTenant recounts a pre-populated content-addressed volume by its
// self-deduplicated footprint, and the store's gauges join the
// observer's registry.
func TestCASQuotaRecountAndMetrics(t *testing.T) {
	h, o := newTestHost(t, 2)
	store := cas.NewStore()
	sub := cas.New(store)
	content := bytes.Repeat([]byte("seed"), 256)
	for _, p := range []string{"/a.bin", "/b.bin", "/c.bin"} {
		if err := sub.WriteFile(p, content); err != nil {
			t.Fatal(err)
		}
	}
	hfs := hac.New(sub, hac.Options{})
	if err := h.AddTenant("seeded", hfs, Quota{}, ""); err != nil {
		t.Fatal(err)
	}
	bytes_, docs := usageOf(t, h, "seeded")
	if bytes_ != int64(len(content)) {
		t.Fatalf("recount bytes = %d, want %d (three copies, one blob)", bytes_, len(content))
	}
	if docs != 3 {
		t.Fatalf("recount docs = %d, want 3", docs)
	}
	snap := o.Registry().Snapshot()
	if got := snap["cas_unique_bytes"]; got != float64(len(content)) {
		t.Fatalf("cas_unique_bytes = %v, want %d", got, len(content))
	}
	if got := snap["cas_dedup_ratio"]; got < 2.9 {
		t.Fatalf("cas_dedup_ratio = %v, want ~3", got)
	}
}
