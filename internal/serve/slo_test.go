package serve

import (
	"errors"
	"testing"
	"time"

	"hacfs/internal/hac"
	"hacfs/internal/obs"
	"hacfs/internal/vfs"
)

func TestSLOTrackerBurnMath(t *testing.T) {
	tr := &sloTracker{slo: SLO{Latency: 10 * time.Millisecond, Target: 0.9}}
	if got := tr.burn(5 * time.Minute); got != 0 {
		t.Fatalf("burn with no traffic = %v, want 0", got)
	}
	// 8 good + 2 bad: error rate 0.2 against a 0.1 budget → burn 2.0.
	for i := 0; i < 8; i++ {
		tr.record(time.Millisecond)
	}
	for i := 0; i < 2; i++ {
		tr.record(time.Second)
	}
	if got := tr.burn(5 * time.Minute); got < 1.99 || got > 2.01 {
		t.Fatalf("burn = %v, want 2.0", got)
	}
	// A window longer than the retained ring clamps rather than reading
	// stale buckets.
	if got := tr.burn(2 * time.Hour); got < 1.99 || got > 2.01 {
		t.Fatalf("burn over clamped window = %v, want 2.0", got)
	}
	// Exactly-at-threshold counts as good.
	tr2 := &sloTracker{slo: SLO{Latency: 10 * time.Millisecond, Target: 0.5}}
	tr2.record(10 * time.Millisecond)
	if got := tr2.burn(time.Minute); got != 0 {
		t.Fatalf("at-threshold request burned %v, want 0 (counts as good)", got)
	}
}

func TestSLOTrackerZeroBudget(t *testing.T) {
	// A 100% target has no error budget; one failure must read as a very
	// hot burn, not a division by zero.
	tr := &sloTracker{slo: SLO{Latency: time.Millisecond, Target: 1.0}}
	tr.record(time.Second)
	if got := tr.burn(time.Minute); got < 1e6 {
		t.Fatalf("burn with zero budget = %v, want very hot", got)
	}
}

func TestSLOTrackerNil(t *testing.T) {
	var tr *sloTracker
	tr.record(time.Second) // must not panic
	if got := tr.burn(time.Minute); got != 0 {
		t.Fatalf("nil tracker burn = %v, want 0", got)
	}
}

func TestSetSLOUnknownTenant(t *testing.T) {
	h := NewHost(1, obs.NewObserver())
	err := h.SetSLO("ghost", SLO{Latency: time.Second, Target: 0.99})
	if !errors.Is(err, vfs.ErrNotExist) {
		t.Fatalf("SetSLO on unknown tenant = %v, want ErrNotExist", err)
	}
}

// TestHostSLOEndToEnd runs requests through Admit/release and checks
// the exported series: lifetime good/total counters and the burn-rate
// gauge computed at scrape time.
func TestHostSLOEndToEnd(t *testing.T) {
	o := obs.NewObserver()
	h := NewHost(2, o)
	if err := h.AddTenant("alice", hac.New(vfs.New(), hac.Options{}), Quota{}, ""); err != nil {
		t.Fatal(err)
	}
	if err := h.SetSLO("alice", SLO{Latency: 25 * time.Millisecond, Target: 0.5}); err != nil {
		t.Fatal(err)
	}
	// Replacing the objective must not double-register the gauge.
	if err := h.SetSLO("alice", SLO{Latency: 25 * time.Millisecond, Target: 0.5}); err != nil {
		t.Fatal(err)
	}

	// One good request (released immediately) and one bad (held past the
	// latency objective).
	release, err := h.Admit("alice", "search")
	if err != nil {
		t.Fatal(err)
	}
	release()
	release, err = h.Admit("alice", "search")
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(100 * time.Millisecond)
	release()
	release() // double release must not double-count

	snap := o.Registry().Snapshot()
	if got := snap[`serve_slo_requests_total{tenant="alice"}`]; got != 2 {
		t.Fatalf("requests_total = %v, want 2", got)
	}
	if got := snap[`serve_slo_good_total{tenant="alice"}`]; got != 1 {
		t.Fatalf("good_total = %v, want 1", got)
	}
	// Error rate 0.5 against a 0.5 budget → burn 1.0 on both windows.
	for _, window := range []string{"5m", "1h"} {
		key := `serve_slo_burn_rate{tenant="alice",window="` + window + `"}`
		if got, ok := snap[key]; !ok || got < 0.99 || got > 1.01 {
			t.Fatalf("%s = %v (present %v), want 1.0", key, got, ok)
		}
	}

	// Tenants without an objective export no SLO series and pay no
	// recording cost (nil tracker).
	if err := h.AddTenant("bob", hac.New(vfs.New(), hac.Options{}), Quota{}, ""); err != nil {
		t.Fatal(err)
	}
	release, err = h.Admit("bob", "search")
	if err != nil {
		t.Fatal(err)
	}
	release()
	snap = o.Registry().Snapshot()
	if _, ok := snap[`serve_slo_requests_total{tenant="bob"}`]; ok {
		t.Fatal("tenant without an SLO exported SLO series")
	}
}
