package serve

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hacfs/internal/hac"
	"hacfs/internal/obs"
	"hacfs/internal/remotefs"
	"hacfs/internal/vfs"
)

// TestMultiTenantSoak is the race/soak harness: several tenants, many
// concurrent clients multiplexed over a handful of shared connections,
// mixed reads, writes, searches and ssyncs, with background index
// merges running against every volume. Run under -race in CI; the
// assertions check per-tenant isolation — every byte a client reads
// back is its own tenant's.
func TestMultiTenantSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	const (
		tenants      = 4
		connsShared  = 3  // clients share this many connections
		clientsPerT  = 8  // concurrent clients per tenant
		opsPerClient = 40 // mixed ops per client
	)

	h := NewHost(0, obs.NewObserver())
	vols := make([]*hac.FS, tenants)
	for i := range vols {
		vols[i] = hac.New(vfs.New(), hac.Options{})
		name := fmt.Sprintf("t%d", i)
		if err := vols[i].MkdirAll("/docs"); err != nil {
			t.Fatal(err)
		}
		if err := h.AddTenant(name, vols[i], Quota{MaxBytes: 1 << 22, MaxInflight: 64}, ""); err != nil {
			t.Fatal(err)
		}
	}

	srv := remotefs.NewHostServer(h, nil)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)
	defer srv.Close()

	// A small pool of shared connections; tenant views multiplex over
	// them.
	muxes := make([]*remotefs.MuxClient, connsShared)
	for i := range muxes {
		muxes[i] = remotefs.DialMux(l.Addr().String())
		muxes[i].SetTimeout(20 * time.Second)
		defer muxes[i].Close()
	}

	// Background mergers: compaction churns every tenant's index while
	// requests fly.
	stopMerge := make(chan struct{})
	var mergeWG sync.WaitGroup
	for _, v := range vols {
		mergeWG.Add(1)
		go func(v *hac.FS) {
			defer mergeWG.Done()
			for {
				select {
				case <-stopMerge:
					return
				case <-time.After(2 * time.Millisecond):
					v.Index().MaybeMerge()
				}
			}
		}(v)
	}

	ctx := context.Background()
	var backpressured atomic.Int64
	var wg sync.WaitGroup
	errCh := make(chan error, tenants*clientsPerT)
	for ti := 0; ti < tenants; ti++ {
		tname := fmt.Sprintf("t%d", ti)
		for ci := 0; ci < clientsPerT; ci++ {
			wg.Add(1)
			go func(ti, ci int) {
				defer wg.Done()
				c := muxes[(ti*clientsPerT+ci)%connsShared].Tenant(tname)
				marker := fmt.Sprintf("tenant%d secret", ti)
				for op := 0; op < opsPerClient; op++ {
					p := fmt.Sprintf("/docs/c%d_%d.txt", ci, op%7)
					var err error
					switch op % 5 {
					case 0, 1:
						err = c.WriteFile(p, []byte(marker))
					case 2:
						var data []byte
						data, err = c.ReadFile(p)
						if err == nil && string(data) != marker {
							errCh <- fmt.Errorf("tenant %d read %q — cross-tenant leak", ti, data)
							return
						}
						if errors.Is(err, vfs.ErrNotExist) {
							err = nil // another op of ours may have raced the write
						}
					case 3:
						_, _, err = c.SearchPage(ctx, "secret", "/docs", 0, 16)
						if errors.Is(err, vfs.ErrUnsupported) {
							err = nil
						}
					case 4:
						err = c.SyncPath("/docs")
					}
					if errors.Is(err, vfs.ErrBackpressure) {
						backpressured.Add(1)
						continue // real clients retry later
					}
					if err != nil {
						errCh <- fmt.Errorf("tenant %d client %d op %d: %w", ti, ci, op, err)
						return
					}
				}
			}(ti, ci)
		}
	}
	wg.Wait()
	close(stopMerge)
	mergeWG.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	// Isolation, volume-side: every file on every volume carries only
	// its own tenant's marker.
	for ti, v := range vols {
		marker := fmt.Sprintf("tenant%d secret", ti)
		entries, err := v.ReadDir("/docs")
		if err != nil {
			t.Fatal(err)
		}
		if len(entries) == 0 {
			t.Fatalf("tenant %d volume ended empty", ti)
		}
		for _, e := range entries {
			if e.Type != vfs.TypeFile {
				continue
			}
			data, err := v.ReadFile("/docs/" + e.Name)
			if err != nil {
				t.Fatal(err)
			}
			if string(data) != marker {
				t.Fatalf("tenant %d file %s = %q — cross-tenant leak", ti, e.Name, data)
			}
		}
	}
	// No admission slots leaked.
	for ti := 0; ti < tenants; ti++ {
		name := fmt.Sprintf("t%d", ti)
		h.mu.Lock()
		inflight := h.tenants[name].inflight
		h.mu.Unlock()
		if inflight != 0 {
			t.Fatalf("tenant %s ended with %d in-flight", name, inflight)
		}
	}
}

// TestGracefulShutdownUnderLoad kills the server mid-load the polite
// way — stop accepting, drain, checkpoint — then recovers each volume
// with LoadVolumeFile + Reindex and verifies integrity.
func TestGracefulShutdownUnderLoad(t *testing.T) {
	dir := t.TempDir()
	h := NewHost(0, obs.NewObserver())
	vols := map[string]*hac.FS{}
	for _, name := range []string{"a", "b"} {
		v := hac.New(vfs.New(), hac.Options{})
		if err := v.MkdirAll("/docs"); err != nil {
			t.Fatal(err)
		}
		if err := h.AddTenant(name, v, Quota{}, dir+"/"+name+".hac"); err != nil {
			t.Fatal(err)
		}
		vols[name] = v
	}
	srv := remotefs.NewHostServer(h, nil)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)
	defer srv.Close()

	mux := remotefs.DialMux(l.Addr().String())
	mux.SetTimeout(10 * time.Second)
	defer mux.Close()

	// Load: clients write continuously until the drain cuts them off.
	var wg sync.WaitGroup
	var completed [2]atomic.Int64
	stopLoad := make(chan struct{})
	for i, name := range []string{"a", "b"} {
		for ci := 0; ci < 4; ci++ {
			wg.Add(1)
			go func(i, ci int, name string) {
				defer wg.Done()
				c := mux.Tenant(name)
				for op := 0; ; op++ {
					select {
					case <-stopLoad:
						return
					default:
					}
					err := c.WriteFile(fmt.Sprintf("/docs/w%d_%d.txt", ci, op), []byte("under load"))
					if err != nil {
						// The drain boundary: requests refused during
						// shutdown fail typed, nothing hangs.
						if errors.Is(err, vfs.ErrShuttingDown) {
							return
						}
						return // connection torn down post-close is fine too
					}
					completed[i].Add(1)
				}
			}(i, ci, name)
		}
	}

	// Let load build, then shut down gracefully mid-flight.
	time.Sleep(50 * time.Millisecond)
	srv.CloseListener()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := h.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if err := h.Checkpoint(); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	close(stopLoad)
	srv.Close()
	wg.Wait()

	for i, name := range []string{"a", "b"} {
		if completed[i].Load() == 0 {
			t.Fatalf("tenant %s completed no writes before shutdown", name)
		}
		loaded, err := hac.LoadVolumeFile(dir+"/"+name+".hac", hac.Options{})
		if err != nil {
			t.Fatalf("recover %s: %v", name, err)
		}
		if _, err := loaded.Reindex("/"); err != nil {
			t.Fatalf("reindex %s: %v", name, err)
		}
		// Every write acknowledged before the drain must be present and
		// intact in the checkpoint.
		entries, err := loaded.ReadDir("/docs")
		if err != nil {
			t.Fatal(err)
		}
		var files int64
		for _, e := range entries {
			if e.Type != vfs.TypeFile {
				continue
			}
			files++
			data, err := loaded.ReadFile("/docs/" + e.Name)
			if err != nil || string(data) != "under load" {
				t.Fatalf("recovered %s/%s = %q, %v", name, e.Name, data, err)
			}
		}
		if files < completed[i].Load() {
			t.Fatalf("tenant %s: %d files recovered, %d writes acknowledged", name, files, completed[i].Load())
		}
		if paths, err := loaded.SearchPaths("load", "/"); err != nil || int64(len(paths)) < files {
			t.Fatalf("tenant %s: recovered search found %d/%d, %v", name, len(paths), files, err)
		}
	}
}
