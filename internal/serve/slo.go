package serve

import (
	"sync"
	"time"

	"hacfs/internal/obs"
	"hacfs/internal/vfs"
)

// SLO is one tenant's latency objective: at least Target of requests
// should finish within Latency, measured from admission to release
// (scheduler wait included — that is what the tenant experiences).
type SLO struct {
	Latency time.Duration // per-request latency threshold
	Target  float64       // objective fraction of good requests, e.g. 0.99
}

// sloWindowSecs is how much per-second history a tracker retains — it
// bounds the longest burn-rate window (1h).
const sloWindowSecs = 3600

// sloBucket accumulates one second's requests. Buckets live in a ring
// indexed by sec % sloWindowSecs and are lazily reset when their slot
// is reused for a new second, so recording stays O(1) with no ticker
// goroutine.
type sloBucket struct {
	sec         int64 // unix second this bucket currently holds
	good, total uint64
}

// sloTracker measures one tenant against its SLO: lifetime good/total
// counters (the serve_slo_*_total series) plus a ring of per-second
// buckets that burn-rate gauges aggregate at scrape time. A nil
// tracker is a no-op, so tenants without an SLO pay nothing.
type sloTracker struct {
	slo       SLO
	goodTotal *obs.Counter // serve_slo_good_total{tenant}
	reqTotal  *obs.Counter // serve_slo_requests_total{tenant}

	mu      sync.Mutex
	buckets [sloWindowSecs]sloBucket
}

// record classifies one finished request against the objective.
func (s *sloTracker) record(dur time.Duration) {
	if s == nil {
		return
	}
	ok := dur <= s.slo.Latency
	now := time.Now().Unix()
	s.mu.Lock()
	b := &s.buckets[now%sloWindowSecs]
	if b.sec != now {
		b.sec, b.good, b.total = now, 0, 0
	}
	b.total++
	if ok {
		b.good++
	}
	s.mu.Unlock()
	s.reqTotal.Inc()
	if ok {
		s.goodTotal.Inc()
	}
}

// burn returns the burn rate over the trailing window: the observed
// error rate divided by the error budget (1 - Target). 1.0 means the
// budget is being spent exactly as fast as the objective allows; a
// multi-window alert pages when both a short and a long window burn
// hot (DESIGN.md §13). No traffic in the window reads as 0.
func (s *sloTracker) burn(window time.Duration) float64 {
	if s == nil {
		return 0
	}
	secs := int64(window / time.Second)
	if secs > sloWindowSecs {
		secs = sloWindowSecs
	}
	now := time.Now().Unix()
	var good, total uint64
	s.mu.Lock()
	for i := int64(0); i < secs; i++ {
		sec := now - i
		if b := &s.buckets[((sec%sloWindowSecs)+sloWindowSecs)%sloWindowSecs]; b.sec == sec {
			good += b.good
			total += b.total
		}
	}
	s.mu.Unlock()
	if total == 0 {
		return 0
	}
	budget := 1 - s.slo.Target
	if budget <= 0 {
		// A 100% target has no budget; surface any error as a very hot
		// burn instead of dividing by zero.
		budget = 1e-9
	}
	return (1 - float64(good)/float64(total)) / budget
}

// sloWindows are the burn-rate windows exported per tenant.
var sloWindows = []struct {
	label string
	d     time.Duration
}{
	{"5m", 5 * time.Minute},
	{"1h", time.Hour},
}

// SetSLO attaches a latency objective to the named tenant and registers
// its series: serve_slo_requests_total / serve_slo_good_total counters
// and a serve_slo_burn_rate{tenant,window} gauge per window, computed
// at scrape time from the per-second ring. Calling it again replaces
// the objective (the lifetime counters continue; a second call with
// the same tenant reuses the registered series).
func (h *Host) SetSLO(name string, slo SLO) error {
	h.mu.Lock()
	t, ok := h.tenants[name]
	h.mu.Unlock()
	if !ok {
		return &vfs.PathError{Op: "slo", Path: "/" + name, Err: vfs.ErrNotExist}
	}
	tr := &sloTracker{slo: slo}
	r := h.obsv.Registry()
	tr.goodTotal = r.Counter("serve_slo_good_total", "tenant", name)
	tr.reqTotal = r.Counter("serve_slo_requests_total", "tenant", name)
	h.mu.Lock()
	first := t.slo == nil
	t.slo = tr
	h.mu.Unlock()
	if first {
		for _, w := range sloWindows {
			w := w
			r.GaugeFunc("serve_slo_burn_rate", func() float64 {
				h.mu.Lock()
				cur := t.slo
				h.mu.Unlock()
				return cur.burn(w.d)
			}, "tenant", name, "window", w.label)
		}
	}
	return nil
}
