package serve

import (
	"context"
	"sync"

	"hacfs/internal/vfs"
	"hacfs/internal/vfs/cas"
)

// Quota bounds one tenant's footprint. Zero fields are unlimited.
type Quota struct {
	MaxBytes    int64 // total regular-file bytes on the volume
	MaxDocs     int64 // total regular files on the volume
	MaxInflight int64 // concurrently executing requests
}

// usage tracks one tenant's accounted footprint. Mutating operations
// hold mu across their check-and-apply window, so concurrent writers
// cannot race past the quota together.
type usage struct {
	mu    sync.Mutex
	bytes int64
	docs  int64
}

// quotaFS enforces byte and document quotas on every mutating path of
// a wrapped file system. Over-quota operations fail with a typed
// *vfs.PathError wrapping vfs.ErrQuotaExceeded before touching the
// volume; accepted ones adjust the tenant's accounted usage by their
// actual effect, so the /metrics gauges track real occupancy.
//
// Two accounting modes exist. Over an ordinary substrate, bytes are
// logical: every file pays its own length. Over a content-addressed
// substrate (store != nil), mutations run inside the store's measured
// sections and the tenant is charged the unique bytes its writes
// actually added — writing content the store already holds (another
// tenant's identical file, its own duplicate) costs nothing, and
// removing content another volume still references frees nothing. The
// byte quota then bounds the tenant's real storage footprint, which is
// what a deduplicating host actually spends.
type quotaFS struct {
	inner vfs.FileSystem
	q     Quota
	u     *usage
	met   *tenantMetrics // reject counter; nil in tests
	store *cas.BlobStore // non-nil = charge measured unique bytes
}

var _ vfs.FileSystem = (*quotaFS)(nil)

func (f *quotaFS) overQuota(op, path string) error {
	if f.met != nil {
		f.met.rejectQuota.Inc()
	}
	return &vfs.PathError{Op: op, Path: path, Err: vfs.ErrQuotaExceeded}
}

// fileFootprint returns the accounted size of path if it is an
// existing regular file (0, false otherwise).
func (f *quotaFS) fileFootprint(path string) (int64, bool) {
	info, err := f.inner.Stat(path)
	if err != nil || info.Type != vfs.TypeFile {
		return 0, false
	}
	return info.Size, true
}

// charge validates a projected change of (db bytes, dd docs) against
// the quota and applies it. Shrinking changes always pass.
func (f *quotaFS) charge(op, path string, db, dd int64) error {
	f.u.mu.Lock()
	defer f.u.mu.Unlock()
	if db > 0 && f.q.MaxBytes > 0 && f.u.bytes+db > f.q.MaxBytes {
		return f.overQuota(op, path)
	}
	if dd > 0 && f.q.MaxDocs > 0 && f.u.docs+dd > f.q.MaxDocs {
		return f.overQuota(op, path)
	}
	f.u.bytes += db
	f.u.docs += dd
	return nil
}

// refund reverses a charge whose operation failed.
func (f *quotaFS) refund(db, dd int64) {
	f.u.mu.Lock()
	f.u.bytes -= db
	f.u.docs -= dd
	f.u.mu.Unlock()
}

// measuredOp is the content-addressed charging path: admit the op
// against its worst-case unique growth (worst bytes, dd docs), run it
// inside the store's measured section, and charge the unique bytes it
// actually added or freed. Holding u.mu across the section serializes
// this tenant's check-and-apply windows, same as charge.
func (f *quotaFS) measuredOp(opName, path string, worst, dd int64, op func() error) error {
	f.u.mu.Lock()
	defer f.u.mu.Unlock()
	if worst > 0 && f.q.MaxBytes > 0 && f.u.bytes+worst > f.q.MaxBytes {
		return f.overQuota(opName, path)
	}
	if dd > 0 && f.q.MaxDocs > 0 && f.u.docs+dd > f.q.MaxDocs {
		return f.overQuota(opName, path)
	}
	delta, err := f.store.Measured(op)
	f.u.bytes += delta // measured truth, even on a partial failure
	if err == nil {
		f.u.docs += dd
	}
	return err
}

func (f *quotaFS) WriteFile(path string, data []byte) error {
	old, existed := f.fileFootprint(path)
	var dd int64
	if !existed {
		dd = 1
	}
	if f.store != nil {
		// Worst case: every byte is new content and the overwritten
		// blob stays referenced elsewhere. A known dedup hit is
		// admitted for free — that is the point of unique-byte quotas:
		// a tenant mirroring content the store already holds fits in a
		// quota sized for one copy. (The hash check races with the last
		// reference dropping; the measured charge stays exact either
		// way, admission is merely an estimate.)
		worst := int64(len(data))
		if f.store.Has(cas.Sum(data)) {
			worst = 0
		}
		return f.measuredOp("write", path, worst, dd,
			func() error { return f.inner.WriteFile(path, data) })
	}
	db := int64(len(data)) - old
	if err := f.charge("write", path, db, dd); err != nil {
		return err
	}
	if err := f.inner.WriteFile(path, data); err != nil {
		f.refund(db, dd)
		return err
	}
	return nil
}

func (f *quotaFS) Create(path string) (vfs.File, error) {
	return f.OpenFile(path, vfs.ORead|vfs.OWrite|vfs.OCreate|vfs.OTrunc)
}

func (f *quotaFS) Open(path string) (vfs.File, error) {
	return f.OpenFile(path, vfs.ORead)
}

func (f *quotaFS) OpenFile(path string, flag int) (vfs.File, error) {
	var db, dd int64
	old, existed := f.fileFootprint(path)
	if !existed && flag&vfs.OCreate != 0 {
		dd = 1
	}
	if f.store != nil {
		// Opening frees at most the truncated blob; growth is charged
		// per handle write.
		var file vfs.File
		err := f.measuredOp("open", path, 0, dd, func() error {
			var e error
			file, e = f.inner.OpenFile(path, flag)
			return e
		})
		if err != nil {
			return nil, err
		}
		return &quotaFile{File: file, fs: f}, nil
	}
	if existed && flag&vfs.OTrunc != 0 {
		db = -old
	}
	if err := f.charge("open", path, db, dd); err != nil {
		return nil, err
	}
	file, err := f.inner.OpenFile(path, flag)
	if err != nil {
		f.refund(db, dd)
		return nil, err
	}
	return &quotaFile{File: file, fs: f}, nil
}

func (f *quotaFS) Remove(path string) error {
	size, isFile := f.fileFootprint(path)
	var dd int64
	if isFile {
		dd = -1
	}
	if f.store != nil {
		return f.measuredOp("remove", path, 0, dd,
			func() error { return f.inner.Remove(path) })
	}
	if err := f.inner.Remove(path); err != nil {
		return err
	}
	if isFile {
		f.refund(size, 1)
	}
	return nil
}

func (f *quotaFS) RemoveAll(path string) error {
	// Account the subtree before it goes; symlinked content outside the
	// subtree is not followed, matching Walk semantics.
	var db, dd int64
	vfs.Walk(f.inner, path, func(p string, info vfs.Info) error {
		if info.Type == vfs.TypeFile {
			db += info.Size
			dd++
		}
		return nil
	})
	if f.store != nil {
		return f.measuredOp("removeall", path, 0, -dd,
			func() error { return f.inner.RemoveAll(path) })
	}
	if err := f.inner.RemoveAll(path); err != nil {
		return err
	}
	f.refund(db, dd)
	return nil
}

// Pass-throughs: metadata and namespace operations carry no quota
// weight (renames move footprint, they do not change it).
func (f *quotaFS) Mkdir(path string) error                     { return f.inner.Mkdir(path) }
func (f *quotaFS) MkdirAll(path string) error                  { return f.inner.MkdirAll(path) }
func (f *quotaFS) Symlink(target, link string) error           { return f.inner.Symlink(target, link) }
func (f *quotaFS) Readlink(path string) (string, error)        { return f.inner.Readlink(path) }
func (f *quotaFS) Rename(o, n string) error                    { return f.inner.Rename(o, n) }
func (f *quotaFS) ReadFile(path string) ([]byte, error)        { return f.inner.ReadFile(path) }
func (f *quotaFS) Stat(path string) (vfs.Info, error)          { return f.inner.Stat(path) }
func (f *quotaFS) Lstat(path string) (vfs.Info, error)         { return f.inner.Lstat(path) }
func (f *quotaFS) ReadDir(path string) ([]vfs.DirEntry, error) { return f.inner.ReadDir(path) }

// Optional surfaces the serving layer forwards (remotefs type-asserts
// the volume it gets from Volumes).

func (f *quotaFS) SearchPage(query, scope string, after uint64, limit int) ([]string, uint64, error) {
	type searcher interface {
		SearchPage(query, scope string, after uint64, limit int) ([]string, uint64, error)
	}
	sr, ok := f.inner.(searcher)
	if !ok {
		return nil, 0, &vfs.PathError{Op: "search", Path: scope, Err: vfs.ErrUnsupported}
	}
	return sr.SearchPage(query, scope, after, limit)
}

func (f *quotaFS) SyncPath(path string) error {
	type syncer interface{ SyncPath(path string) error }
	ps, ok := f.inner.(syncer)
	if !ok {
		return &vfs.PathError{Op: "ssync", Path: path, Err: vfs.ErrUnsupported}
	}
	return ps.SyncPath(path)
}

// Context-threading forms (remotefs.ContextSearcher / ContextSyncer):
// forwarded so a propagated trace passes through the quota wrapper to
// the engine; fall back to the plain forms for inner file systems that
// predate them.

func (f *quotaFS) SearchPageContext(ctx context.Context, query, scope string, after uint64, limit int) ([]string, uint64, error) {
	type searcher interface {
		SearchPageContext(ctx context.Context, query, scope string, after uint64, limit int) ([]string, uint64, error)
	}
	if sr, ok := f.inner.(searcher); ok {
		return sr.SearchPageContext(ctx, query, scope, after, limit)
	}
	return f.SearchPage(query, scope, after, limit)
}

func (f *quotaFS) SyncPathContext(ctx context.Context, path string) error {
	type syncer interface {
		SyncPathContext(ctx context.Context, path string) error
	}
	if ps, ok := f.inner.(syncer); ok {
		return ps.SyncPathContext(ctx, path)
	}
	return f.SyncPath(path)
}

// Manifest-diff replication surface (remotefs.BlobSource): forwarded so
// a content-addressed tenant volume can serve manifests and blobs to
// mirroring replicas through the quota wrapper. Reads carry no quota
// weight, matching ReadFile.

func (f *quotaFS) CASManifest() (*cas.Manifest, error) {
	type source interface {
		CASManifest() (*cas.Manifest, error)
	}
	bs, ok := f.inner.(source)
	if !ok {
		return nil, &vfs.PathError{Op: "manifest", Path: "/", Err: vfs.ErrUnsupported}
	}
	return bs.CASManifest()
}

func (f *quotaFS) CASBlobs(hashes []cas.Hash) ([][]byte, error) {
	type source interface {
		CASBlobs(hashes []cas.Hash) ([][]byte, error)
	}
	bs, ok := f.inner.(source)
	if !ok {
		return nil, &vfs.PathError{Op: "blobs", Path: "/", Err: vfs.ErrUnsupported}
	}
	return bs.CASBlobs(hashes)
}

// quotaFile charges handle writes by their measured growth: sizes are
// read under the usage lock around the inner operation, so concurrent
// handle writers serialize their check-and-apply windows.
type quotaFile struct {
	vfs.File
	fs *quotaFS
}

// grow runs op, charging the file's size change. The pessimistic
// pre-check bounds the worst-case growth (computed from the size at
// entry); the final charge is the measured delta. On a content-
// addressed substrate handle writes mutate a dirty buffer, so the
// store-measured charge mostly lands when Close seals the buffer; the
// measured section here still catches the reference the first write
// releases on the blob it is shadowing.
func (qf *quotaFile) grow(worstOf func(cur int64) int64, op func() (int, error)) (int, error) {
	qf.fs.u.mu.Lock()
	defer qf.fs.u.mu.Unlock()
	before, _ := qf.File.Stat()
	if worst := worstOf(before.Size); worst > 0 && qf.fs.q.MaxBytes > 0 && qf.fs.u.bytes+worst > qf.fs.q.MaxBytes {
		return 0, qf.fs.overQuota("write", qf.Name())
	}
	if qf.fs.store != nil {
		var n int
		delta, err := qf.fs.store.Measured(func() error {
			var e error
			n, e = op()
			return e
		})
		qf.fs.u.bytes += delta
		return n, err
	}
	n, err := op()
	after, _ := qf.File.Stat()
	qf.fs.u.bytes += after.Size - before.Size
	return n, err
}

// Close seals buffered writes. On a content-addressed substrate the
// seal is where the handle's content enters the store, so the unique
// bytes it adds are measured and charged here.
func (qf *quotaFile) Close() error {
	if qf.fs.store == nil {
		return qf.File.Close()
	}
	qf.fs.u.mu.Lock()
	defer qf.fs.u.mu.Unlock()
	delta, err := qf.fs.store.Measured(qf.File.Close)
	qf.fs.u.bytes += delta
	return err
}

func (qf *quotaFile) Write(p []byte) (int, error) {
	return qf.grow(func(int64) int64 { return int64(len(p)) },
		func() (int, error) { return qf.File.Write(p) })
}

func (qf *quotaFile) WriteAt(p []byte, off int64) (int, error) {
	return qf.grow(func(int64) int64 { return int64(len(p)) },
		func() (int, error) { return qf.File.WriteAt(p, off) })
}

func (qf *quotaFile) Truncate(size int64) error {
	_, err := qf.grow(func(cur int64) int64 { return size - cur },
		func() (int, error) { return 0, qf.File.Truncate(size) })
	return err
}
