package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total")
	c.Inc()
	c.Add(4)
	c.Add(-3) // negative ignored: counters are monotonic
	c.Add(0)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if again := r.Counter("c_total"); again != c {
		t.Fatal("same name should return the same counter")
	}
	var nilC *Counter
	nilC.Add(1) // must not panic
	nilC.Inc()
	if nilC.Value() != 0 {
		t.Fatal("nil counter should read 0")
	}
}

func TestGaugeBasics(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("g")
	g.Set(10)
	g.Add(-4)
	if got := g.Value(); got != 6 {
		t.Fatalf("gauge = %d, want 6", got)
	}
	var nilG *Gauge
	nilG.Set(1)
	nilG.Add(1)
	if nilG.Value() != 0 {
		t.Fatal("nil gauge should read 0")
	}
}

// TestHistogramBucketBoundaries pins the bucket semantics: bounds are
// inclusive upper bounds, values above the last bound land only in the
// implicit +Inf bucket, and cumulative counts follow Prometheus "le"
// semantics.
func TestHistogramBucketBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", []float64{4, 1, 2}) // unsorted on purpose
	for _, v := range []float64{
		0.5, // below first bound     -> le=1
		1,   // exactly on a bound    -> le=1 (inclusive)
		1.5, // between bounds        -> le=2
		4,   // exactly the last      -> le=4
		4.5, // above the last        -> +Inf only
	} {
		h.Observe(v)
	}
	bounds, cum := h.Buckets()
	wantBounds := []float64{1, 2, 4}
	wantCum := []uint64{2, 3, 4}
	if len(bounds) != len(wantBounds) {
		t.Fatalf("bounds = %v, want %v", bounds, wantBounds)
	}
	for i := range bounds {
		if bounds[i] != wantBounds[i] || cum[i] != wantCum[i] {
			t.Errorf("bucket %d: (%g, %d), want (%g, %d)",
				i, bounds[i], cum[i], wantBounds[i], wantCum[i])
		}
	}
	if got := h.Count(); got != 5 {
		t.Fatalf("count = %d, want 5", got)
	}
	if got := h.Sum(); got != 11.5 {
		t.Fatalf("sum = %g, want 11.5", got)
	}

	var nilH *Histogram
	nilH.Observe(1)
	nilH.ObserveDuration(0)
	if nilH.Count() != 0 || nilH.Sum() != 0 {
		t.Fatal("nil histogram should read 0")
	}
}

func TestHistogramDefaultBounds(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", nil)
	bounds, _ := h.Buckets()
	if len(bounds) != len(DefLatencyBuckets) {
		t.Fatalf("nil bounds should select DefLatencyBuckets (%d), got %d",
			len(DefLatencyBuckets), len(bounds))
	}
}

// TestWritePrometheusGolden pins the full text exposition: family TYPE
// lines in registration order, sorted label rendering, integer vs float
// formatting, cumulative histogram buckets with the implicit +Inf, and
// trailing collector samples. Values are picked to be exact in binary
// floating point so the output is byte-stable.
func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("greet_total").Add(3)
	r.Counter("rpc_total", "method", "search").Add(2)
	r.Counter("rpc_total", "method", "ping").Inc()
	r.Gauge("queue_depth").Set(7)
	r.GaugeFunc("temperature", func() float64 { return 1.5 })
	h := r.Histogram("op_seconds", []float64{0.5, 2})
	h.Observe(0.25)
	h.Observe(0.5)
	h.Observe(4)
	r.RegisterCollector(func(emit func(name string, labels Labels, value float64)) {
		emit("ext_total", Labels{"src": "disk"}, 8)
	})

	want := `# TYPE greet_total counter
greet_total 3
# TYPE rpc_total counter
rpc_total{method="search"} 2
rpc_total{method="ping"} 1
# TYPE queue_depth gauge
queue_depth 7
# TYPE temperature gauge
temperature 1.5
# TYPE op_seconds histogram
op_seconds_bucket{le="0.5"} 2
op_seconds_bucket{le="2"} 2
op_seconds_bucket{le="+Inf"} 3
op_seconds_sum 4.75
op_seconds_count 3
ext_total{src="disk"} 8
`
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if got := b.String(); got != want {
		t.Errorf("exposition mismatch\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total").Add(2)
	r.Histogram("b_seconds", []float64{1}).Observe(0.5)
	r.GaugeFunc("c", func() float64 { return 9 })
	snap := r.Snapshot()
	for key, want := range map[string]float64{
		"a_total":         2,
		"b_seconds_count": 1,
		"b_seconds_sum":   0.5,
		"c":               9,
	} {
		if got := snap[key]; got != want {
			t.Errorf("snapshot[%q] = %g, want %g", key, got, want)
		}
	}
}

func TestNilRegistryHandsOutNoopHandles(t *testing.T) {
	var r *Registry
	r.Counter("x").Inc()
	r.Gauge("y").Set(1)
	r.Histogram("z", nil).Observe(1)
	r.GaugeFunc("w", func() float64 { return 1 })
	r.RegisterCollector(func(emit func(string, Labels, float64)) {})
	if err := r.WritePrometheus(&strings.Builder{}); err != nil {
		t.Fatal(err)
	}
	if r.Snapshot() != nil {
		t.Fatal("nil registry snapshot should be nil")
	}
}

// TestRegistryRace exercises concurrent registration, recording and
// scraping; it exists to run under -race.
func TestRegistryRace(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				r.Counter("race_total").Inc()
				r.Counter("race_labeled_total", "worker", "w").Add(2)
				r.Gauge("race_gauge").Add(1)
				r.Histogram("race_seconds", nil).Observe(0.001)
				r.GaugeFunc("race_fn", func() float64 { return float64(j) })
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for j := 0; j < 200; j++ {
			var b strings.Builder
			_ = r.WritePrometheus(&b)
			_ = r.Snapshot()
		}
	}()
	wg.Wait()
	if got := r.Counter("race_total").Value(); got != 4*500 {
		t.Fatalf("race_total = %d, want %d", got, 4*500)
	}
}
