package obs

import "sync"

// Observer bundles a metrics registry and a tracer — the sink every
// instrumented layer records into. Inject one per volume with
// hac.WithObserver, or rely on Default(), the process-wide observer
// behind the daemons' -debug-addr endpoints.
//
// A nil *Observer, and an Observer with nil components, are valid
// no-op sinks: every metric handle obtained through them is nil and
// every record is a cheap nil-checked no-op (see Discard).
type Observer struct {
	reg    *Registry
	tracer *Tracer
	slow   *SlowLog
}

// NewObserver returns an observer with a fresh registry, a tracer
// retaining DefSpanRing spans, and a slow-op log retaining DefSlowRing
// entries.
func NewObserver() *Observer {
	return &Observer{reg: NewRegistry(), tracer: NewTracer(0), slow: NewSlowLog(0)}
}

// Registry returns the metrics registry (nil for a no-op observer).
func (o *Observer) Registry() *Registry {
	if o == nil {
		return nil
	}
	return o.reg
}

// Tracer returns the span tracer (nil for a no-op observer).
func (o *Observer) Tracer() *Tracer {
	if o == nil {
		return nil
	}
	return o.tracer
}

// Slow returns the slow-op log (nil for a no-op observer).
func (o *Observer) Slow() *SlowLog {
	if o == nil {
		return nil
	}
	return o.slow
}

var (
	defaultOnce sync.Once
	defaultObs  *Observer

	discard = &Observer{} // nil registry and tracer: all records no-op
)

// Default returns the process-wide observer, created on first use and
// published under expvar as "hacfs" (visible at /debug/vars). It is
// the observer every volume and client uses unless one is injected
// explicitly.
func Default() *Observer {
	defaultOnce.Do(func() {
		defaultObs = NewObserver()
		defaultObs.reg.PublishExpvar("hacfs")
	})
	return defaultObs
}

// Discard returns a non-nil observer that records nothing — the
// explicit "observability off" sink (hacbench's overhead experiment
// measures enabled-vs-Discard).
func Discard() *Observer { return discard }
