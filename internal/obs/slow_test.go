package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"
	"time"
)

func TestSlowLogThresholdAndRing(t *testing.T) {
	sl := NewSlowLog(4)
	if got := sl.Threshold(); got != DefSlowThreshold {
		t.Fatalf("default threshold = %v, want %v", got, DefSlowThreshold)
	}
	sl.SetThreshold(10 * time.Millisecond)
	if sl.Over(9 * time.Millisecond) {
		t.Fatal("9ms should be under a 10ms threshold")
	}
	if !sl.Over(11 * time.Millisecond) {
		t.Fatal("11ms should be over a 10ms threshold")
	}
	for i := 1; i <= 6; i++ {
		sl.Record(SlowOp{Op: fmt.Sprintf("op%d", i), Dur: time.Second})
	}
	recent := sl.Recent()
	if len(recent) != 4 {
		t.Fatalf("ring retained %d ops, want 4", len(recent))
	}
	for i, want := range []string{"op3", "op4", "op5", "op6"} {
		if recent[i].Op != want {
			t.Errorf("recent[%d] = %s, want %s (oldest first)", i, recent[i].Op, want)
		}
	}
	if got := sl.Total(); got != 6 {
		t.Fatalf("total = %d, want 6", got)
	}
	if recent[0].Time.IsZero() {
		t.Fatal("Record should stamp a zero Time")
	}
}

func TestSlowLogDisabled(t *testing.T) {
	sl := NewSlowLog(4)
	sl.SetThreshold(0)
	if sl.Over(time.Hour) {
		t.Fatal("threshold 0 disables the log")
	}
}

func TestSlowLogNil(t *testing.T) {
	var sl *SlowLog
	if sl.Over(time.Hour) {
		t.Fatal("nil log is never over")
	}
	sl.Record(SlowOp{Op: "x"})
	sl.SetThreshold(time.Second)
	if sl.Recent() != nil || sl.Total() != 0 {
		t.Fatal("nil log should report nothing")
	}
	var buf bytes.Buffer
	if err := sl.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var ops []SlowOp
	if err := json.Unmarshal(buf.Bytes(), &ops); err != nil {
		t.Fatalf("nil log JSON does not parse: %v\n%s", err, buf.String())
	}
}

func TestSlowLogWriteJSON(t *testing.T) {
	sl := NewSlowLog(4)
	sl.Record(SlowOp{Op: "hac.Search", Tenant: "alice", Arg: "q", Dur: time.Second, Detail: "plan"})
	var buf bytes.Buffer
	if err := sl.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var ops []SlowOp
	if err := json.Unmarshal(buf.Bytes(), &ops); err != nil {
		t.Fatalf("slow-op JSON does not parse: %v\n%s", err, buf.String())
	}
	if len(ops) != 1 || ops[0].Op != "hac.Search" || ops[0].Tenant != "alice" || ops[0].Dur != time.Second {
		t.Fatalf("ops = %+v, want the recorded op", ops)
	}
}
