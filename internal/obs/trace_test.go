package obs

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"testing"
)

// TestSpanRingWraparound finishes more spans than the ring holds and
// checks that only the newest survive, oldest first, while Total keeps
// counting evicted ones.
func TestSpanRingWraparound(t *testing.T) {
	tr := NewTracer(4)
	for i := 1; i <= 10; i++ {
		s := tr.Start(fmt.Sprintf("op%d", i))
		s.Finish()
	}
	recent := tr.Recent()
	if len(recent) != 4 {
		t.Fatalf("ring retained %d spans, want 4", len(recent))
	}
	for i, want := range []string{"op7", "op8", "op9", "op10"} {
		if recent[i].Name != want {
			t.Errorf("recent[%d] = %s, want %s (oldest first)", i, recent[i].Name, want)
		}
	}
	if got := tr.Total(); got != 10 {
		t.Fatalf("total = %d, want 10", got)
	}
}

func TestSpanRingPartiallyFull(t *testing.T) {
	tr := NewTracer(8)
	tr.Start("only").Finish()
	recent := tr.Recent()
	if len(recent) != 1 || recent[0].Name != "only" {
		t.Fatalf("recent = %v, want the single finished span", recent)
	}
}

func TestSpanParentAndAnnotations(t *testing.T) {
	tr := NewTracer(0)
	root := tr.Start("root")
	root.Annotate("k", "v")
	child := root.Child("child")
	if child.Parent != root.ID {
		t.Fatalf("child.Parent = %d, want %d", child.Parent, root.ID)
	}
	child.FinishErr(errors.New("boom"))
	root.Finish()
	root.Annotate("late", "ignored") // after Finish: no-op
	root.Finish()                    // double finish: no-op

	if got := tr.Total(); got != 2 {
		t.Fatalf("total = %d, want 2 (double finish must not retain twice)", got)
	}
	if child.Err != "boom" {
		t.Fatalf("child.Err = %q, want boom", child.Err)
	}
	if len(root.Attrs) != 1 || root.Attrs[0].Key != "k" {
		t.Fatalf("root.Attrs = %v, want only the pre-finish annotation", root.Attrs)
	}
	if root.Dur < 0 {
		t.Fatal("finished span should have a stamped duration")
	}
}

func TestNilTracerAndSpan(t *testing.T) {
	var tr *Tracer
	s := tr.Start("x")
	if s != nil {
		t.Fatal("nil tracer should hand out nil spans")
	}
	s.Annotate("k", "v")
	s.Child("c").Finish()
	s.FinishErr(errors.New("e"))
	if tr.Recent() != nil || tr.Total() != 0 {
		t.Fatal("nil tracer should report nothing")
	}
}

func TestWriteJSON(t *testing.T) {
	tr := NewTracer(4)
	var empty bytes.Buffer
	if err := tr.WriteJSON(&empty); err != nil {
		t.Fatal(err)
	}
	sp := tr.Start("op")
	sp.Annotate("dir", "/q")
	sp.Finish()
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var spans []struct {
		Name  string `json:"name"`
		Attrs []Attr `json:"attrs"`
	}
	if err := json.Unmarshal(buf.Bytes(), &spans); err != nil {
		t.Fatalf("span JSON does not parse: %v\n%s", err, buf.String())
	}
	if len(spans) != 1 || spans[0].Name != "op" || len(spans[0].Attrs) != 1 {
		t.Fatalf("spans = %+v, want one annotated op", spans)
	}
}

// TestTracerRace finishes spans from several goroutines while a reader
// drains the ring; it exists to run under -race.
func TestTracerRace(t *testing.T) {
	tr := NewTracer(16)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				s := tr.Start("op")
				s.Annotate("j", "x")
				s.Child("inner").Finish()
				s.Finish()
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for j := 0; j < 100; j++ {
			for _, s := range tr.Recent() {
				_ = s.Name
				_ = s.Attrs
			}
		}
	}()
	wg.Wait()
	if got := tr.Total(); got != 4*200*2 {
		t.Fatalf("total = %d, want %d", got, 4*200*2)
	}
}
