package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestSpanRingWraparound finishes more spans than the ring holds and
// checks that only the newest survive, oldest first, while Total keeps
// counting evicted ones.
func TestSpanRingWraparound(t *testing.T) {
	tr := NewTracer(4)
	for i := 1; i <= 10; i++ {
		s := tr.Start(fmt.Sprintf("op%d", i))
		s.Finish()
	}
	recent := tr.Recent()
	if len(recent) != 4 {
		t.Fatalf("ring retained %d spans, want 4", len(recent))
	}
	for i, want := range []string{"op7", "op8", "op9", "op10"} {
		if recent[i].Name != want {
			t.Errorf("recent[%d] = %s, want %s (oldest first)", i, recent[i].Name, want)
		}
	}
	if got := tr.Total(); got != 10 {
		t.Fatalf("total = %d, want 10", got)
	}
}

func TestSpanRingPartiallyFull(t *testing.T) {
	tr := NewTracer(8)
	tr.Start("only").Finish()
	recent := tr.Recent()
	if len(recent) != 1 || recent[0].Name != "only" {
		t.Fatalf("recent = %v, want the single finished span", recent)
	}
}

func TestSpanParentAndAnnotations(t *testing.T) {
	tr := NewTracer(0)
	root := tr.Start("root")
	root.Annotate("k", "v")
	child := root.Child("child")
	if child.Parent != root.ID {
		t.Fatalf("child.Parent = %d, want %d", child.Parent, root.ID)
	}
	child.FinishErr(errors.New("boom"))
	root.Finish()
	root.Annotate("late", "ignored") // after Finish: no-op
	root.Finish()                    // double finish: no-op

	if got := tr.Total(); got != 2 {
		t.Fatalf("total = %d, want 2 (double finish must not retain twice)", got)
	}
	if child.Err != "boom" {
		t.Fatalf("child.Err = %q, want boom", child.Err)
	}
	if len(root.Attrs) != 1 || root.Attrs[0].Key != "k" {
		t.Fatalf("root.Attrs = %v, want only the pre-finish annotation", root.Attrs)
	}
	if root.Dur < 0 {
		t.Fatal("finished span should have a stamped duration")
	}
}

func TestNilTracerAndSpan(t *testing.T) {
	var tr *Tracer
	s := tr.Start("x")
	if s != nil {
		t.Fatal("nil tracer should hand out nil spans")
	}
	s.Annotate("k", "v")
	s.Child("c").Finish()
	s.FinishErr(errors.New("e"))
	if tr.Recent() != nil || tr.Total() != 0 {
		t.Fatal("nil tracer should report nothing")
	}
}

func TestWriteJSON(t *testing.T) {
	tr := NewTracer(4)
	var empty bytes.Buffer
	if err := tr.WriteJSON(&empty); err != nil {
		t.Fatal(err)
	}
	sp := tr.Start("op")
	sp.Annotate("dir", "/q")
	sp.Finish()
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var spans []struct {
		Name  string `json:"name"`
		Attrs []Attr `json:"attrs"`
	}
	if err := json.Unmarshal(buf.Bytes(), &spans); err != nil {
		t.Fatalf("span JSON does not parse: %v\n%s", err, buf.String())
	}
	if len(spans) != 1 || spans[0].Name != "op" || len(spans[0].Attrs) != 1 {
		t.Fatalf("spans = %+v, want one annotated op", spans)
	}
}

// TestStartCtxMintsAndAdopts: a StartCtx with a bare context mints a
// fresh trace; one whose context already carries a span context joins
// it as a child.
func TestStartCtxMintsAndAdopts(t *testing.T) {
	tr := NewTracer(8)
	root, ctx := tr.StartCtx(context.Background(), "root")
	if root.Trace.IsZero() {
		t.Fatal("root span should mint a trace id")
	}
	child, _ := tr.StartCtx(ctx, "child")
	if child.Trace != root.Trace {
		t.Fatalf("child trace %s, want parent's %s", child.Trace, root.Trace)
	}
	if child.Parent != root.ID {
		t.Fatalf("child.Parent = %d, want %d", child.Parent, root.ID)
	}

	// A remote context (ContextWith) is adopted the same way.
	remote := SpanContext{Trace: NewTraceID(), Span: 77}
	adopted, _ := tr.StartCtx(ContextWith(context.Background(), remote), "server")
	if adopted.Trace != remote.Trace || adopted.Parent != remote.Span {
		t.Fatalf("adopted = {%s %d}, want remote context {%s %d}",
			adopted.Trace, adopted.Parent, remote.Trace, remote.Span)
	}

	// Nil tracer still forwards the inbound trace through the context.
	var nilTr *Tracer
	sp, ctx2 := nilTr.StartCtx(ContextWith(context.Background(), remote), "x")
	if sp != nil {
		t.Fatal("nil tracer should hand out nil spans")
	}
	if sc, ok := FromContext(ctx2); !ok || sc != remote {
		t.Fatal("nil tracer must not drop the propagated context")
	}
}

func TestByTrace(t *testing.T) {
	tr := NewTracer(16)
	a, ctx := tr.StartCtx(context.Background(), "a")
	b, _ := tr.StartCtx(ctx, "b")
	b.Finish()
	a.Finish()
	other := tr.Start("other")
	other.Finish()

	got := tr.ByTrace(a.Trace)
	if len(got) != 2 {
		t.Fatalf("ByTrace retained %d spans, want 2", len(got))
	}
	if got[0].Name != "a" || got[1].Name != "b" {
		t.Fatalf("ByTrace order = [%s %s], want start order [a b]", got[0].Name, got[1].Name)
	}
	if tr.ByTrace(TraceID{}) != nil {
		t.Fatal("zero trace id should match nothing")
	}
}

func TestAnnotateCap(t *testing.T) {
	tr := NewTracer(4)
	sp := tr.Start("op")
	for i := 0; i < MaxSpanAttrs+5; i++ {
		sp.Annotate(fmt.Sprintf("k%d", i), "v")
	}
	sp.Finish()
	if len(sp.Attrs) != MaxSpanAttrs {
		t.Fatalf("attrs = %d, want cap %d", len(sp.Attrs), MaxSpanAttrs)
	}
	if sp.AttrsDropped != 5 {
		t.Fatalf("dropped = %d, want 5", sp.AttrsDropped)
	}
}

func TestSpanIDNonSequentialAcrossTracers(t *testing.T) {
	// Span IDs are salted per tracer so merged cross-process traces do
	// not collide; two fresh tracers must not hand out the same first ID.
	a := NewTracer(2).Start("a")
	b := NewTracer(2).Start("b")
	if a.ID == b.ID {
		t.Fatalf("two tracers minted the same span id %d", a.ID)
	}
	if a.ID == 0 || b.ID == 0 {
		t.Fatal("span id 0 is reserved for \"no parent\"")
	}
}

func TestTraceIDRoundTrip(t *testing.T) {
	id := NewTraceID()
	parsed, err := ParseTraceID(id.String())
	if err != nil || parsed != id {
		t.Fatalf("ParseTraceID(%s) = %v, %v", id, parsed, err)
	}
	hi, lo := id.Words()
	if TraceIDFromWords(hi, lo) != id {
		t.Fatal("Words/FromWords round trip failed")
	}
	if _, err := ParseTraceID("nope"); err == nil {
		t.Fatal("short id should not parse")
	}
}

// TestWriteJSONSorted: the debug dump is ordered by start time even
// when spans finish out of order, and includes error strings.
func TestWriteJSONSorted(t *testing.T) {
	tr := NewTracer(8)
	first := tr.Start("first")
	time.Sleep(time.Millisecond)
	second := tr.Start("second")
	second.FinishErr(errors.New("late failure"))
	first.Finish() // finishes after second: retention order reversed
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var spans []struct {
		Name string `json:"name"`
		Err  string `json:"err"`
	}
	if err := json.Unmarshal(buf.Bytes(), &spans); err != nil {
		t.Fatalf("span JSON does not parse: %v\n%s", err, buf.String())
	}
	if len(spans) != 2 || spans[0].Name != "first" || spans[1].Name != "second" {
		t.Fatalf("spans = %+v, want start order [first second]", spans)
	}
	if spans[1].Err != "late failure" {
		t.Fatalf("err = %q, want the FinishErr string", spans[1].Err)
	}
}

// TestTracerRace finishes spans from several goroutines while a reader
// drains the ring; it exists to run under -race.
func TestTracerRace(t *testing.T) {
	tr := NewTracer(16)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				s := tr.Start("op")
				s.Annotate("j", "x")
				s.Child("inner").Finish()
				s.Finish()
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for j := 0; j < 100; j++ {
			for _, s := range tr.Recent() {
				_ = s.Name
				_ = s.Attrs
			}
		}
	}()
	wg.Wait()
	if got := tr.Total(); got != 4*200*2 {
		t.Fatalf("total = %d, want %d", got, 4*200*2)
	}
}
