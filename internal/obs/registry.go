// Package obs is the observability core of the repository: a
// dependency-free metrics registry (atomic counters, gauges and
// fixed-bucket latency histograms) with Prometheus-text and expvar
// exposition, lightweight operation tracing (Span) with a bounded
// in-memory ring of recent spans, and the HTTP wiring that exposes
// both — plus pprof — behind a daemon's -debug-addr flag.
//
// The paper's evaluation (§4, §6) hinges on knowing where time goes:
// query evaluation vs. reindexing vs. link materialization. Every
// hot-path package records into this registry through an *Observer
// injected at construction (hac.WithObserver); the default observer is
// a process-wide singleton published under expvar.
//
// All metric handles are nil-safe: a nil *Counter, *Gauge, *Histogram,
// *Tracer or *Span is a no-op, so instrumented code never branches on
// whether observability is enabled. Disabling costs one nil check per
// record (see the hacbench "obs" experiment).
package obs

import (
	"expvar"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing metric. The zero value is not
// usable; obtain counters from a Registry. A nil Counter is a no-op.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add increases the counter by n (negative n is ignored — counters are
// monotonic).
func (c *Counter) Add(n int64) {
	if c == nil || n <= 0 {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a metric that can go up and down. A nil Gauge is a no-op.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge value.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Add adjusts the gauge by n (may be negative).
func (g *Gauge) Add(n int64) {
	if g == nil {
		return
	}
	g.v.Add(n)
}

// Value returns the current gauge value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// DefLatencyBuckets are the default histogram bounds for operation
// latencies, in seconds: 10µs up to 10s, roughly ×2.5 per step.
var DefLatencyBuckets = []float64{
	0.00001, 0.000025, 0.0001, 0.00025, 0.001, 0.0025,
	0.01, 0.025, 0.1, 0.25, 1, 2.5, 10,
}

// DefWidthBuckets are default bounds for size-like observations
// (antichain widths, batch sizes).
var DefWidthBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256}

// Histogram is a fixed-bucket histogram in the Prometheus style:
// cumulative bucket counts plus a running sum and total count. Bucket
// bounds are upper bounds (inclusive); observations above the last
// bound land only in the implicit +Inf bucket. A nil Histogram is a
// no-op.
type Histogram struct {
	bounds  []float64
	counts  []atomic.Uint64 // len(bounds)+1; last is +Inf
	count   atomic.Uint64
	sumBits atomic.Uint64 // float64 bits, CAS-updated
}

func newHistogram(bounds []float64) *Histogram {
	b := make([]float64, len(bounds))
	copy(b, bounds)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// ObserveDuration records a latency in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) {
	h.Observe(d.Seconds())
}

// ObserveSince records the latency since start, and is the idiomatic
// way to time a section: defer m.ObserveSince(time.Now()).
func (h *Histogram) ObserveSince(start time.Time) {
	if h == nil {
		return
	}
	h.ObserveDuration(time.Since(start))
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Buckets returns the bucket bounds and the cumulative count at or
// below each bound (Prometheus "le" semantics); the final implicit
// +Inf bucket equals Count().
func (h *Histogram) Buckets() (bounds []float64, cumulative []uint64) {
	if h == nil {
		return nil, nil
	}
	bounds = append([]float64(nil), h.bounds...)
	cumulative = make([]uint64, len(h.bounds))
	var cum uint64
	for i := range h.bounds {
		cum += h.counts[i].Load()
		cumulative[i] = cum
	}
	return bounds, cumulative
}

// Labels attach dimensions to a metric name ({method="search"}).
// Registry methods take them as alternating key, value strings.
type Labels map[string]string

func (l Labels) render() string {
	if len(l) == 0 {
		return ""
	}
	keys := make([]string, 0, len(l))
	for k := range l {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, l[k])
	}
	b.WriteByte('}')
	return b.String()
}

// renderWith renders the label set with one extra pair appended (used
// for the histogram "le" label).
func (l Labels) renderWith(k, v string) string {
	m := make(Labels, len(l)+1)
	for key, val := range l {
		m[key] = val
	}
	m[k] = v
	return m.render()
}

func pairs(kv []string) Labels {
	if len(kv) == 0 {
		return nil
	}
	l := make(Labels, len(kv)/2)
	for i := 0; i+1 < len(kv); i += 2 {
		l[kv[i]] = kv[i+1]
	}
	return l
}

// metric is one registered series.
type metric struct {
	name   string // family name, without labels
	labels Labels
	kind   string // "counter", "gauge", "histogram"

	counter *Counter
	gauge   *Gauge
	fn      func() float64
	hist    *Histogram
}

func (m *metric) key() string { return m.name + m.labels.render() }

// CollectorFunc emits samples computed at scrape time; register one
// with Registry.RegisterCollector to surface counters kept elsewhere
// (e.g. a FaultFS's per-op stats) without copying them continuously.
type CollectorFunc func(emit func(name string, labels Labels, value float64))

// Registry holds named metrics and renders them for scraping. The zero
// value is not usable; call NewRegistry. A nil *Registry hands out nil
// (no-op) metric handles, so code instrumented against a registry works
// unchanged with observability disabled.
type Registry struct {
	mu         sync.Mutex
	metrics    map[string]*metric
	order      []string // registration order of keys
	collectors []CollectorFunc

	expvarOnce sync.Once
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]*metric)}
}

func (r *Registry) lookupOrCreate(name string, labels Labels, kind string, create func() *metric) *metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	key := name + labels.render()
	if m, ok := r.metrics[key]; ok && m.kind == kind {
		return m
	}
	m := create()
	if _, existed := r.metrics[key]; !existed {
		r.order = append(r.order, key)
	}
	r.metrics[key] = m
	return m
}

// Counter returns the counter with the given name and optional
// alternating label key/value pairs, creating it on first use. A nil
// registry returns a nil (no-op) counter.
func (r *Registry) Counter(name string, labelKV ...string) *Counter {
	if r == nil {
		return nil
	}
	labels := pairs(labelKV)
	m := r.lookupOrCreate(name, labels, "counter", func() *metric {
		return &metric{name: name, labels: labels, kind: "counter", counter: &Counter{}}
	})
	return m.counter
}

// Gauge returns the gauge with the given name and labels, creating it
// on first use.
func (r *Registry) Gauge(name string, labelKV ...string) *Gauge {
	if r == nil {
		return nil
	}
	labels := pairs(labelKV)
	m := r.lookupOrCreate(name, labels, "gauge", func() *metric {
		return &metric{name: name, labels: labels, kind: "gauge", gauge: &Gauge{}}
	})
	return m.gauge
}

// GaugeFunc registers (or replaces) a gauge computed at scrape time.
// Replacement keeps re-construction simple: when several volumes share
// one registry, the most recently constructed one wins.
func (r *Registry) GaugeFunc(name string, fn func() float64, labelKV ...string) {
	if r == nil {
		return
	}
	labels := pairs(labelKV)
	r.mu.Lock()
	defer r.mu.Unlock()
	key := name + labels.render()
	m, ok := r.metrics[key]
	if !ok {
		m = &metric{name: name, labels: labels}
		r.metrics[key] = m
		r.order = append(r.order, key)
	}
	m.kind = "gauge"
	m.fn = fn
	m.gauge = nil
}

// Histogram returns the histogram with the given name, bounds and
// labels, creating it on first use. Pass nil bounds for
// DefLatencyBuckets. Bounds are fixed at creation; later calls with
// different bounds return the existing histogram.
func (r *Registry) Histogram(name string, bounds []float64, labelKV ...string) *Histogram {
	if r == nil {
		return nil
	}
	if bounds == nil {
		bounds = DefLatencyBuckets
	}
	labels := pairs(labelKV)
	m := r.lookupOrCreate(name, labels, "histogram", func() *metric {
		return &metric{name: name, labels: labels, kind: "histogram", hist: newHistogram(bounds)}
	})
	return m.hist
}

// RegisterCollector adds a scrape-time collector.
func (r *Registry) RegisterCollector(fn CollectorFunc) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.collectors = append(r.collectors, fn)
	r.mu.Unlock()
}

// snapshotLocked returns the metrics in registration order.
func (r *Registry) snapshot() ([]*metric, []CollectorFunc) {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*metric, 0, len(r.order))
	for _, key := range r.order {
		out = append(out, r.metrics[key])
	}
	cols := append([]CollectorFunc(nil), r.collectors...)
	return out, cols
}

// fmtFloat renders a sample value the way Prometheus expects: integers
// without an exponent, everything else in shortest form.
func fmtFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// WritePrometheus renders every metric in the Prometheus text
// exposition format (version 0.0.4). Families are emitted in
// registration order with one # TYPE line each; collector samples
// follow as untyped series.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	metrics, collectors := r.snapshot()
	typed := make(map[string]bool)
	var err error
	p := func(format string, args ...interface{}) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	for _, m := range metrics {
		if !typed[m.name] {
			typed[m.name] = true
			p("# TYPE %s %s\n", m.name, m.kind)
		}
		switch m.kind {
		case "counter":
			p("%s%s %s\n", m.name, m.labels.render(), fmtFloat(float64(m.counter.Value())))
		case "gauge":
			v := 0.0
			if m.fn != nil {
				v = m.fn()
			} else {
				v = float64(m.gauge.Value())
			}
			p("%s%s %s\n", m.name, m.labels.render(), fmtFloat(v))
		case "histogram":
			bounds, cum := m.hist.Buckets()
			for i, b := range bounds {
				p("%s_bucket%s %d\n", m.name, m.labels.renderWith("le", fmtFloat(b)), cum[i])
			}
			p("%s_bucket%s %d\n", m.name, m.labels.renderWith("le", "+Inf"), m.hist.Count())
			p("%s_sum%s %s\n", m.name, m.labels.render(), fmtFloat(m.hist.Sum()))
			p("%s_count%s %d\n", m.name, m.labels.render(), m.hist.Count())
		}
	}
	for _, c := range collectors {
		c(func(name string, labels Labels, value float64) {
			p("%s%s %s\n", name, labels.render(), fmtFloat(value))
		})
	}
	return err
}

// Snapshot returns a flat name→value view of the registry (histograms
// contribute _count and _sum entries), used for the expvar export and
// the hacsh stats builtin.
func (r *Registry) Snapshot() map[string]float64 {
	if r == nil {
		return nil
	}
	metrics, collectors := r.snapshot()
	out := make(map[string]float64, len(metrics))
	for _, m := range metrics {
		key := m.key()
		switch m.kind {
		case "counter":
			out[key] = float64(m.counter.Value())
		case "gauge":
			if m.fn != nil {
				out[key] = m.fn()
			} else {
				out[key] = float64(m.gauge.Value())
			}
		case "histogram":
			out[key+"_count"] = float64(m.hist.Count())
			out[key+"_sum"] = m.hist.Sum()
		}
	}
	for _, c := range collectors {
		c(func(name string, labels Labels, value float64) {
			out[name+labels.render()] = value
		})
	}
	return out
}

// PublishExpvar exposes the registry under the given expvar name
// (visible at /debug/vars). Safe to call repeatedly; only the first
// call publishes, and a name collision with an unrelated publisher is
// swallowed rather than panicking.
func (r *Registry) PublishExpvar(name string) {
	if r == nil {
		return
	}
	r.expvarOnce.Do(func() {
		defer func() { _ = recover() }() // expvar.Publish panics on reuse
		expvar.Publish(name, expvar.Func(func() interface{} { return r.Snapshot() }))
	})
}
