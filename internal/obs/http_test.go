package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestHandlerEndpoints(t *testing.T) {
	o := NewObserver()
	o.Registry().Counter("hits_total").Add(3)
	o.Tracer().Start("op").Finish()
	srv := httptest.NewServer(Handler(o))
	defer srv.Close()

	get := func(path string) (string, *http.Response) {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: read: %v", path, err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d\n%s", path, resp.StatusCode, body)
		}
		return string(body), resp
	}

	body, resp := get("/metrics")
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("/metrics content-type = %q", ct)
	}
	if !strings.Contains(body, "# TYPE hits_total counter") ||
		!strings.Contains(body, "hits_total 3") {
		t.Errorf("/metrics missing series:\n%s", body)
	}

	body, _ = get("/debug/spans")
	var spans []map[string]interface{}
	if err := json.Unmarshal([]byte(body), &spans); err != nil {
		t.Fatalf("/debug/spans is not a JSON array: %v\n%s", err, body)
	}
	if len(spans) != 1 || spans[0]["name"] != "op" {
		t.Errorf("/debug/spans = %s, want one op span", body)
	}

	if body, _ = get("/debug/pprof/"); !strings.Contains(body, "goroutine") {
		t.Errorf("/debug/pprof/ index looks wrong:\n%.200s", body)
	}
	get("/debug/vars")
}

func TestServeOnEphemeralPort(t *testing.T) {
	o := NewObserver()
	o.Registry().Counter("up").Inc()
	l, err := Serve("127.0.0.1:0", o)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	resp, err := http.Get("http://" + l.Addr().String() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), "up 1") {
		t.Errorf("scrape over the listener missing series:\n%s", body)
	}
}

func TestDiscardObserverIsInert(t *testing.T) {
	o := Discard()
	if o.Registry() != nil || o.Tracer() != nil {
		t.Fatal("discard observer should expose nil handles")
	}
	o.Registry().Counter("x").Inc()
	o.Tracer().Start("y").Finish()
}
