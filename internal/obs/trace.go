package obs

import (
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"sync"
	"sync/atomic"
	"time"
)

// SpanID identifies one operation within a Tracer's ID space.
type SpanID uint64

// Attr is one key/value annotation on a span.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// Span records one timed operation: a name, start/end times, optional
// annotations, a parent link for nesting and an error message if the
// operation failed. Spans are created with Tracer.Start or Span.Child
// and enter the tracer's ring buffer when finished. A nil *Span is a
// no-op, so callers never branch on whether tracing is enabled.
type Span struct {
	ID     SpanID        `json:"id"`
	Parent SpanID        `json:"parent,omitempty"`
	Name   string        `json:"name"`
	Start  time.Time     `json:"start"`
	Dur    time.Duration `json:"dur_ns"`
	Attrs  []Attr        `json:"attrs,omitempty"`
	Err    string        `json:"err,omitempty"`

	tracer *Tracer
	mu     sync.Mutex
	done   bool
}

// Annotate attaches a key/value pair to the span. Annotating a
// finished span is a no-op (finished spans are shared with readers of
// the ring buffer).
func (s *Span) Annotate(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if !s.done {
		s.Attrs = append(s.Attrs, Attr{Key: key, Value: value})
	}
	s.mu.Unlock()
}

// Child starts a new span parented to s, in the same tracer.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	return s.tracer.start(name, s.ID)
}

// Finish stamps the span's duration and retains it in the tracer's
// ring buffer. Finishing twice is a no-op.
func (s *Span) Finish() { s.FinishErr(nil) }

// FinishErr is Finish recording the operation's error (nil for
// success).
func (s *Span) FinishErr(err error) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.done {
		s.mu.Unlock()
		return
	}
	s.done = true
	s.Dur = time.Since(s.Start)
	if err != nil {
		s.Err = err.Error()
	}
	s.mu.Unlock()
	s.tracer.retain(s)
}

// DefSpanRing is the default number of finished spans a Tracer
// retains.
const DefSpanRing = 256

// Tracer hands out spans and retains the most recent finished ones in
// a bounded ring buffer, oldest evicted first. It is safe for
// concurrent use; a nil *Tracer is a no-op.
type Tracer struct {
	nextID atomic.Uint64

	mu     sync.Mutex
	ring   []*Span
	next   int // ring insertion point
	total  uint64
	logger *slog.Logger
}

// NewTracer returns a tracer retaining up to capacity finished spans
// (capacity <= 0 selects DefSpanRing).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefSpanRing
	}
	return &Tracer{ring: make([]*Span, capacity)}
}

// SetLogger attaches a structured event log: every finished span is
// additionally emitted as one slog record (name, duration, attrs,
// error). Pass nil to detach.
func (t *Tracer) SetLogger(l *slog.Logger) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.logger = l
	t.mu.Unlock()
}

// Start begins a new root span.
func (t *Tracer) Start(name string) *Span {
	if t == nil {
		return nil
	}
	return t.start(name, 0)
}

func (t *Tracer) start(name string, parent SpanID) *Span {
	if t == nil {
		return nil
	}
	return &Span{
		ID:     SpanID(t.nextID.Add(1)),
		Parent: parent,
		Name:   name,
		Start:  time.Now(),
		tracer: t,
	}
}

func (t *Tracer) retain(s *Span) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.ring[t.next] = s
	t.next = (t.next + 1) % len(t.ring)
	t.total++
	logger := t.logger
	t.mu.Unlock()
	if logger != nil {
		attrs := make([]slog.Attr, 0, len(s.Attrs)+3)
		attrs = append(attrs,
			slog.Uint64("span", uint64(s.ID)),
			slog.Duration("dur", s.Dur))
		if s.Parent != 0 {
			attrs = append(attrs, slog.Uint64("parent", uint64(s.Parent)))
		}
		for _, a := range s.Attrs {
			attrs = append(attrs, slog.String(a.Key, a.Value))
		}
		if s.Err != "" {
			attrs = append(attrs, slog.String("err", s.Err))
		}
		logger.LogAttrs(context.Background(), slog.LevelInfo, s.Name, attrs...)
	}
}

// Recent returns the retained spans, oldest first.
func (t *Tracer) Recent() []*Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]*Span, 0, len(t.ring))
	for i := 0; i < len(t.ring); i++ {
		if s := t.ring[(t.next+i)%len(t.ring)]; s != nil {
			out = append(out, s)
		}
	}
	return out
}

// Total returns how many spans have finished over the tracer's
// lifetime (including those already evicted from the ring).
func (t *Tracer) Total() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// WriteJSON renders the retained spans (oldest first) as a JSON array,
// the payload behind /debug/spans.
func (t *Tracer) WriteJSON(w io.Writer) error {
	spans := t.Recent()
	if spans == nil {
		spans = []*Span{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(spans)
}
