package obs

import (
	"context"
	cryptorand "crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	mathrand "math/rand/v2"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// SpanID identifies one operation within a Tracer's ID space.
type SpanID uint64

// TraceID identifies one request end to end: every span the request
// touches — across goroutines, volumes and processes — carries the
// same TraceID, minted once at the request's root and propagated via
// context locally and the wire trace header remotely (DESIGN.md §13).
// The zero TraceID means "no trace".
type TraceID [16]byte

// NewTraceID mints a random 128-bit trace identifier. IDs only need to
// be unique, not unpredictable, so this draws from math/rand/v2's
// ChaCha8 generator (itself seeded from the OS) rather than paying a
// getrandom syscall per request — trace minting sits on the hot path of
// every traced RPC.
func NewTraceID() TraceID {
	var id TraceID
	binary.BigEndian.PutUint64(id[:8], mathrand.Uint64())
	binary.BigEndian.PutUint64(id[8:], mathrand.Uint64())
	return id
}

// IsZero reports whether the ID is the "no trace" sentinel.
func (t TraceID) IsZero() bool { return t == TraceID{} }

// String renders the ID as 32 lowercase hex digits.
func (t TraceID) String() string { return hex.EncodeToString(t[:]) }

// Words splits the ID into two 64-bit halves, for codecs that ship it
// as integers (the gob request fields).
func (t TraceID) Words() (hi, lo uint64) {
	return binary.BigEndian.Uint64(t[:8]), binary.BigEndian.Uint64(t[8:])
}

// TraceIDFromWords reassembles a TraceID split by Words.
func TraceIDFromWords(hi, lo uint64) TraceID {
	var t TraceID
	binary.BigEndian.PutUint64(t[:8], hi)
	binary.BigEndian.PutUint64(t[8:], lo)
	return t
}

// MarshalText renders the ID as hex (used by encoding/json).
func (t TraceID) MarshalText() ([]byte, error) {
	buf := make([]byte, hex.EncodedLen(len(t)))
	hex.Encode(buf, t[:])
	return buf, nil
}

// UnmarshalText parses the hex form.
func (t *TraceID) UnmarshalText(b []byte) error {
	id, err := ParseTraceID(string(b))
	if err != nil {
		return err
	}
	*t = id
	return nil
}

// ParseTraceID parses the 32-hex-digit form produced by String.
func ParseTraceID(s string) (TraceID, error) {
	var t TraceID
	if hex.DecodedLen(len(s)) != len(t) {
		return TraceID{}, fmt.Errorf("obs: trace id %q: want %d hex digits", s, 2*len(t))
	}
	if _, err := hex.Decode(t[:], []byte(s)); err != nil {
		return TraceID{}, fmt.Errorf("obs: trace id %q: %w", s, err)
	}
	return t, nil
}

// SpanContext is the propagatable part of a span: the trace it belongs
// to and its own ID, which children — local or remote — use as their
// parent link. It is what rides a context and the wire trace header.
type SpanContext struct {
	Trace TraceID
	Span  SpanID
}

// Valid reports whether the context names a trace.
func (sc SpanContext) Valid() bool { return !sc.Trace.IsZero() }

type traceCtxKey struct{}
type tenantCtxKey struct{}

// ContextWith returns ctx carrying sc, so spans started downstream
// (Tracer.StartCtx) join sc's trace as children of sc.Span.
func ContextWith(ctx context.Context, sc SpanContext) context.Context {
	if !sc.Valid() {
		return ctx
	}
	return context.WithValue(ctx, traceCtxKey{}, sc)
}

// FromContext extracts the propagated span context, if any. The value
// under the key is either a boxed SpanContext (ContextWith) or a live
// *Span (StartCtx stores the span pointer directly — re-boxing a
// 24-byte struct on every span start is measurable on the RPC hot
// path; a pointer boxes for free).
func FromContext(ctx context.Context) (SpanContext, bool) {
	if ctx == nil {
		return SpanContext{}, false
	}
	switch v := ctx.Value(traceCtxKey{}).(type) {
	case SpanContext:
		return v, true
	case *Span:
		return SpanContext{Trace: v.Trace, Span: v.ID}, true
	}
	return SpanContext{}, false
}

// WithTenant returns ctx carrying the tenant name a request runs on
// behalf of. Tenant is server-local baggage — the serving layer stamps
// it after admission; it is never read from the wire — and the slow-op
// log picks it up (see SlowLog).
func WithTenant(ctx context.Context, tenant string) context.Context {
	if tenant == "" {
		return ctx
	}
	return context.WithValue(ctx, tenantCtxKey{}, tenant)
}

// TenantFromContext extracts the tenant stamped by WithTenant ("" when
// absent).
func TenantFromContext(ctx context.Context) string {
	if ctx == nil {
		return ""
	}
	tenant, _ := ctx.Value(tenantCtxKey{}).(string)
	return tenant
}

// Attr is one key/value annotation on a span.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// Span records one timed operation: a name, start/end times, optional
// annotations, a parent link for nesting and an error message if the
// operation failed. Spans are created with Tracer.Start or Span.Child
// and enter the tracer's ring buffer when finished. A nil *Span is a
// no-op, so callers never branch on whether tracing is enabled.
type Span struct {
	ID     SpanID        `json:"id"`
	Parent SpanID        `json:"parent,omitempty"`
	Trace  TraceID       `json:"trace"`
	Name   string        `json:"name"`
	Start  time.Time     `json:"start"`
	Dur    time.Duration `json:"dur_ns"`
	Attrs  []Attr        `json:"attrs,omitempty"`
	// AttrsDropped counts annotations discarded once the span hit
	// MaxSpanAttrs, so a hot loop annotating per item cannot grow a
	// span without bound (the drops stay visible).
	AttrsDropped int    `json:"attrs_dropped,omitempty"`
	Err          string `json:"err,omitempty"`

	tracer *Tracer
	mu     sync.Mutex
	done   bool
	// attrsBuf inlines storage for the first annotations: nearly every
	// span carries one or two, and a separate slice allocation per span
	// is measurable on the RPC hot path.
	attrsBuf [2]Attr
}

// MaxSpanAttrs bounds the annotations one span retains; further
// Annotate calls increment AttrsDropped instead of appending.
const MaxSpanAttrs = 32

// Annotate attaches a key/value pair to the span. Annotating a
// finished span is a no-op (finished spans are shared with readers of
// the ring buffer); annotating past MaxSpanAttrs drops the pair and
// counts it in AttrsDropped.
func (s *Span) Annotate(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if !s.done {
		switch {
		case len(s.Attrs) >= MaxSpanAttrs:
			s.AttrsDropped++
		case s.Attrs == nil:
			s.Attrs = append(s.attrsBuf[:0], Attr{Key: key, Value: value})
		default:
			s.Attrs = append(s.Attrs, Attr{Key: key, Value: value})
		}
	}
	s.mu.Unlock()
}

// Child starts a new span parented to s, in the same tracer and the
// same trace.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	return s.tracer.startIn(name, SpanContext{Trace: s.Trace, Span: s.ID}, nil)
}

// Context returns the span's propagatable identity, for manual
// propagation (ContextWith) or wire injection.
func (s *Span) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return SpanContext{Trace: s.Trace, Span: s.ID}
}

// Finish stamps the span's duration and retains it in the tracer's
// ring buffer. Finishing twice is a no-op.
func (s *Span) Finish() { s.FinishErr(nil) }

// FinishErr is Finish recording the operation's error (nil for
// success).
func (s *Span) FinishErr(err error) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.done {
		s.mu.Unlock()
		return
	}
	s.done = true
	s.Dur = time.Since(s.Start)
	if err != nil {
		s.Err = err.Error()
	}
	s.mu.Unlock()
	s.tracer.retain(s)
}

// DefSpanRing is the default number of finished spans a Tracer
// retains.
const DefSpanRing = 256

// Tracer hands out spans and retains the most recent finished ones in
// a bounded ring buffer, oldest evicted first. It is safe for
// concurrent use; a nil *Tracer is a no-op. The ring is lock-free —
// span retention sits on the request hot path, and a mutex there is
// measurable — so concurrent readers see a best-effort snapshot:
// complete and exactly ordered when writes are quiescent, possibly
// missing a slot mid-overwrite when they are not.
type Tracer struct {
	nextID atomic.Uint64
	idBase uint64 // random salt: keeps span IDs from colliding across processes

	ring   []atomic.Pointer[Span]
	pos    atomic.Uint64 // spans retained over the tracer's lifetime
	logger atomic.Pointer[slog.Logger]
}

// NewTracer returns a tracer retaining up to capacity finished spans
// (capacity <= 0 selects DefSpanRing).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefSpanRing
	}
	// Span IDs are the counter XOR a random per-tracer base. Sequential
	// IDs alone would collide across processes (every tracer counts from
	// 1), and a merged cross-process trace would mis-link parents.
	var salt [8]byte
	if _, err := cryptorand.Read(salt[:]); err != nil {
		binary.BigEndian.PutUint64(salt[:], uint64(time.Now().UnixNano()))
	}
	return &Tracer{idBase: binary.BigEndian.Uint64(salt[:]), ring: make([]atomic.Pointer[Span], capacity)}
}

// SetLogger attaches a structured event log: every finished span is
// additionally emitted as one slog record (name, duration, attrs,
// error). Pass nil to detach.
func (t *Tracer) SetLogger(l *slog.Logger) {
	if t == nil {
		return
	}
	t.logger.Store(l)
}

// Start begins a new root span in a freshly minted trace.
func (t *Tracer) Start(name string) *Span {
	if t == nil {
		return nil
	}
	return t.startIn(name, SpanContext{}, nil)
}

// StartRemote begins a span as the child of a span context extracted
// from the wire (zero parent mints a fresh root). It is the server-side
// entry point for cross-process traces: unlike StartCtx it takes the
// parent directly, so the caller doesn't pay for threading the inbound
// context through a context.Context it is about to re-wrap anyway.
// kv pairs become the span's initial annotations, written before the
// span is visible to anyone else — cheaper than Annotate on the RPC
// hot path, which would take the span lock per pair.
func (t *Tracer) StartRemote(parent SpanContext, name string, kv ...string) *Span {
	if t == nil {
		return nil
	}
	return t.startIn(name, parent, kv)
}

// StartFrom begins a span that joins the trace propagated in ctx, like
// StartCtx, but does not wrap the span back into a context — for leaf
// operations with no traced children, where the extra context layer
// would be paid for nothing. kv pairs are initial annotations as in
// StartRemote.
func (t *Tracer) StartFrom(ctx context.Context, name string, kv ...string) *Span {
	if t == nil {
		return nil
	}
	sc, _ := FromContext(ctx)
	return t.startIn(name, sc, kv)
}

// StartCtx begins a span that joins the trace propagated in ctx — as a
// child of the propagated span — or mints a fresh trace when ctx
// carries none. The returned context carries the new span's identity,
// so spans started downstream (locally or across the wire) nest under
// it. A nil tracer returns (nil, ctx) unchanged, so propagation-only
// paths still forward an inbound trace.
func (t *Tracer) StartCtx(ctx context.Context, name string) (*Span, context.Context) {
	if ctx == nil {
		ctx = context.Background()
	}
	if t == nil {
		return nil, ctx
	}
	sc, _ := FromContext(ctx)
	s := t.startIn(name, sc, nil)
	return s, context.WithValue(ctx, traceCtxKey{}, s)
}

// ContextWithSpan returns ctx carrying s's identity, like
// ContextWith(ctx, s.Context()) but without boxing a fresh value — the
// span is already on the heap. A nil span returns ctx unchanged.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, traceCtxKey{}, s)
}

// startIn begins a span inside sc's trace (zero sc = fresh root). kv
// pairs become initial annotations, written lock-free: the span is not
// shared with any other goroutine until it finishes into the ring.
func (t *Tracer) startIn(name string, sc SpanContext, kv []string) *Span {
	if t == nil {
		return nil
	}
	if !sc.Valid() {
		sc.Trace = NewTraceID()
	}
	id := t.idBase ^ t.nextID.Add(1)
	if id == 0 { // 0 is the "no parent" sentinel; skip it
		id = t.idBase ^ t.nextID.Add(1)
	}
	s := &Span{
		ID:     SpanID(id),
		Parent: sc.Span,
		Trace:  sc.Trace,
		Name:   name,
		Start:  time.Now(),
		tracer: t,
	}
	if n := len(kv) / 2; n > 0 {
		if n <= len(s.attrsBuf) {
			s.Attrs = s.attrsBuf[:0]
		} else {
			s.Attrs = make([]Attr, 0, n)
		}
		for i := 0; i+1 < len(kv); i += 2 {
			s.Attrs = append(s.Attrs, Attr{Key: kv[i], Value: kv[i+1]})
		}
	}
	return s
}

func (t *Tracer) retain(s *Span) {
	if t == nil {
		return
	}
	idx := t.pos.Add(1) - 1
	t.ring[idx%uint64(len(t.ring))].Store(s)
	if logger := t.logger.Load(); logger != nil {
		attrs := make([]slog.Attr, 0, len(s.Attrs)+3)
		attrs = append(attrs,
			slog.Uint64("span", uint64(s.ID)),
			slog.Duration("dur", s.Dur))
		if s.Parent != 0 {
			attrs = append(attrs, slog.Uint64("parent", uint64(s.Parent)))
		}
		for _, a := range s.Attrs {
			attrs = append(attrs, slog.String(a.Key, a.Value))
		}
		if s.Err != "" {
			attrs = append(attrs, slog.String("err", s.Err))
		}
		logger.LogAttrs(context.Background(), slog.LevelInfo, s.Name, attrs...)
	}
}

// Recent returns the retained spans, oldest first.
func (t *Tracer) Recent() []*Span {
	if t == nil {
		return nil
	}
	total := t.pos.Load()
	n := uint64(len(t.ring))
	start := uint64(0)
	if total > n {
		start = total - n
	}
	out := make([]*Span, 0, total-start)
	for i := start; i < total; i++ {
		if s := t.ring[i%n].Load(); s != nil {
			out = append(out, s)
		}
	}
	return out
}

// Total returns how many spans have finished over the tracer's
// lifetime (including those already evicted from the ring).
func (t *Tracer) Total() uint64 {
	if t == nil {
		return 0
	}
	return t.pos.Load()
}

// ByTrace returns the retained spans belonging to one trace, sorted by
// start time (ties by span ID) — one process's fragment of a
// distributed trace, the payload behind /debug/trace?id=.
func (t *Tracer) ByTrace(id TraceID) []*Span {
	if t == nil || id.IsZero() {
		return nil
	}
	var out []*Span
	for _, s := range t.Recent() {
		if s.Trace == id {
			out = append(out, s)
		}
	}
	sortSpans(out)
	return out
}

// sortSpans orders spans by start time, ties broken by span ID, so
// JSON renderings are deterministic.
func sortSpans(spans []*Span) {
	sort.SliceStable(spans, func(i, j int) bool {
		if !spans[i].Start.Equal(spans[j].Start) {
			return spans[i].Start.Before(spans[j].Start)
		}
		return spans[i].ID < spans[j].ID
	})
}

// WriteJSON renders the retained spans as a JSON array sorted by start
// time (stable across ring wraparound, so traces render
// deterministically), the payload behind /debug/spans. Finished spans
// carry their FinishErr message in the "err" field.
func (t *Tracer) WriteJSON(w io.Writer) error {
	spans := t.Recent()
	if spans == nil {
		spans = []*Span{}
	}
	sortSpans(spans)
	return writeSpanJSON(w, spans)
}

// writeSpanJSON streams spans as one indented JSON array.
func writeSpanJSON(w io.Writer, spans []*Span) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(spans)
}
