package obs

import (
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// DefSlowRing is the default number of slow operations a SlowLog
// retains.
const DefSlowRing = 64

// DefSlowThreshold is the default latency above which an operation is
// recorded as slow.
const DefSlowThreshold = 250 * time.Millisecond

// SlowOp is one over-threshold operation: what ran, for whom, how
// long it took, the trace it belongs to, and — for searches — the
// planner's Explain output captured at evaluation time.
type SlowOp struct {
	Time   time.Time     `json:"time"`
	Op     string        `json:"op"`
	Tenant string        `json:"tenant,omitempty"`
	Arg    string        `json:"arg,omitempty"` // query / path, op-specific
	Dur    time.Duration `json:"dur_ns"`
	Trace  TraceID       `json:"trace"`
	Err    string        `json:"err,omitempty"`
	Detail string        `json:"detail,omitempty"` // captured Explain plan
}

// SlowLog is a bounded ring of over-threshold operations, newest
// evicting oldest — the payload behind /debug/slow and the hacsh
// `slow` builtin. It is safe for concurrent use; a nil *SlowLog is a
// no-op, so instrumented paths never branch on whether it is enabled.
//
// The intended pattern keeps capture cost off the fast path: callers
// check Over(dur) first and only then assemble the SlowOp (rendering
// an Explain plan is not free), so sub-threshold operations pay one
// atomic load.
type SlowLog struct {
	threshold atomic.Int64 // nanoseconds; <= 0 disables recording

	mu    sync.Mutex
	ring  []SlowOp
	next  int
	total uint64
}

// NewSlowLog returns a slow-op log retaining up to capacity entries
// (capacity <= 0 selects DefSlowRing) with DefSlowThreshold.
func NewSlowLog(capacity int) *SlowLog {
	if capacity <= 0 {
		capacity = DefSlowRing
	}
	l := &SlowLog{ring: make([]SlowOp, 0, capacity)}
	l.threshold.Store(int64(DefSlowThreshold))
	return l
}

// SetThreshold changes the latency above which operations are
// recorded. d <= 0 disables recording entirely.
func (l *SlowLog) SetThreshold(d time.Duration) {
	if l == nil {
		return
	}
	l.threshold.Store(int64(d))
}

// Threshold returns the current recording threshold (0 = disabled).
func (l *SlowLog) Threshold() time.Duration {
	if l == nil {
		return 0
	}
	if t := l.threshold.Load(); t > 0 {
		return time.Duration(t)
	}
	return 0
}

// Over reports whether an operation of duration d should be recorded —
// the cheap fast-path check callers make before assembling a SlowOp.
func (l *SlowLog) Over(d time.Duration) bool {
	if l == nil {
		return false
	}
	t := l.threshold.Load()
	return t > 0 && d >= time.Duration(t)
}

// Record retains op, evicting the oldest entry when the ring is full.
// The entry's Time is stamped here when zero.
func (l *SlowLog) Record(op SlowOp) {
	if l == nil {
		return
	}
	if op.Time.IsZero() {
		op.Time = time.Now()
	}
	l.mu.Lock()
	if len(l.ring) < cap(l.ring) {
		l.ring = append(l.ring, op)
	} else {
		l.ring[l.next] = op
		l.next = (l.next + 1) % cap(l.ring)
	}
	l.total++
	l.mu.Unlock()
}

// Recent returns the retained slow operations, oldest first.
func (l *SlowLog) Recent() []SlowOp {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]SlowOp, 0, len(l.ring))
	if len(l.ring) < cap(l.ring) {
		out = append(out, l.ring...)
		return out
	}
	for i := 0; i < len(l.ring); i++ {
		out = append(out, l.ring[(l.next+i)%len(l.ring)])
	}
	return out
}

// Total returns how many slow operations have been recorded over the
// log's lifetime (including evicted ones).
func (l *SlowLog) Total() uint64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.total
}

// WriteJSON renders the retained slow operations (oldest first) as a
// JSON array, the payload behind /debug/slow.
func (l *SlowLog) WriteJSON(w io.Writer) error {
	ops := l.Recent()
	if ops == nil {
		ops = []SlowOp{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(ops)
}
