package obs

import (
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
)

// Handler returns the debug mux served behind a daemon's -debug-addr
// flag:
//
//	/metrics      Prometheus text exposition of the observer's registry
//	/debug/vars   expvar JSON (includes the registry snapshot when the
//	              registry is expvar-published, as Default()'s is)
//	/debug/pprof  the standard pprof index, profiles and traces
//	/debug/spans  JSON array of the tracer's retained spans, sorted by
//	              start time
//	/debug/slow   JSON array of over-threshold operations, oldest first
//	/debug/trace  ?id=<32 hex digits>: JSON array of the retained spans
//	              belonging to one trace, sorted by start time
func Handler(o *Observer) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = o.Registry().WritePrometheus(w)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/debug/spans", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = o.Tracer().WriteJSON(w)
	})
	mux.HandleFunc("/debug/slow", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = o.Slow().WriteJSON(w)
	})
	mux.HandleFunc("/debug/trace", func(w http.ResponseWriter, r *http.Request) {
		id, err := ParseTraceID(r.URL.Query().Get("id"))
		if err != nil {
			http.Error(w, "bad or missing trace id: "+err.Error(), http.StatusBadRequest)
			return
		}
		spans := o.Tracer().ByTrace(id)
		if spans == nil {
			spans = []*Span{}
		}
		w.Header().Set("Content-Type", "application/json")
		_ = writeSpanJSON(w, spans)
	})
	return mux
}

// Serve starts the debug HTTP server on addr in a background
// goroutine and returns the listener (so addr may be ":0"). The
// caller owns the listener; closing it stops the server.
func Serve(addr string, o *Observer) (net.Listener, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: Handler(o)}
	go func() { _ = srv.Serve(l) }()
	return l, nil
}
