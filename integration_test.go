package hacfs_test

import (
	"bytes"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"hacfs"
	"hacfs/internal/catalog"
	"hacfs/internal/corpus"
	"hacfs/internal/hac"
	"hacfs/internal/remote"
	"hacfs/internal/remotefs"
	"hacfs/internal/vfs"
)

// TestFullStack drives every subsystem in one scenario: a corpus-backed
// volume with transducers and auto-sync, dir-reference queries, a
// semantically mounted remote library, volume persistence, a served
// volume mounted by a second user, and the published catalog. After
// each phase the volume must pass the consistency audit.
func TestFullStack(t *testing.T) {
	audit := func(fs *hacfs.FS, phase string) {
		t.Helper()
		if problems := fs.CheckConsistency(); len(problems) != 0 {
			t.Fatalf("%s: consistency audit failed:\n%s", phase, strings.Join(problems, "\n"))
		}
	}

	// --- Phase 1: local volume with corpus, transducers, queries. -----
	fs := hacfs.NewVolumeOver(hacfs.NewMemFS(), hacfs.Options{
		Transducers: map[string][]hacfs.Transducer{
			".eml": {hacfs.EmailTransducer},
			"":     {hacfs.PathTransducer},
		},
	})
	if err := fs.MkdirAll("/docs"); err != nil {
		t.Fatal(err)
	}
	man, err := corpus.Generate(fs, "/docs", corpus.Spec{Files: 200, Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Reindex("/"); err != nil {
		t.Fatal(err)
	}
	if err := fs.MkSemDir("/topic0", man.TopicTerm[0]); err != nil {
		t.Fatal(err)
	}
	targets, err := fs.LinkTargets("/topic0")
	if err != nil || len(targets) != len(man.TopicFiles[0]) {
		t.Fatalf("topic0 targets = %d, want %d (%v)", len(targets), len(man.TopicFiles[0]), err)
	}
	// Attribute query from the path transducer.
	if err := fs.MkSemDir("/emails", "ext:eml"); err != nil {
		t.Fatal(err)
	}
	emails, _ := fs.LinkTargets("/emails")
	if len(emails) == 0 {
		t.Fatal("no emails matched ext:eml")
	}
	audit(fs, "phase 1")

	// --- Phase 2: user edits + dir-reference query + rename. ----------
	victim := targets[0]
	if err := fs.Remove("/topic0/" + vfs.Base(victim)); err != nil {
		t.Fatal(err)
	}
	if err := fs.MkSemDir("/combo", "dir:/topic0 AND markermany"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Rename("/topic0", "/topic-renamed"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Sync("/"); err != nil {
		t.Fatal(err)
	}
	disp, err := fs.QueryDisplay("/combo")
	if err != nil || !strings.Contains(disp, "dir:/topic-renamed") {
		t.Fatalf("query display after rename = %q, %v", disp, err)
	}
	comboTargets, _ := fs.LinkTargets("/combo")
	for _, target := range comboTargets {
		if target == victim {
			t.Fatal("pruned target leaked through dir reference")
		}
	}
	audit(fs, "phase 2")

	// --- Phase 3: auto-sync + scheduler. --------------------------------
	if err := fs.MkdirAll("/mail"); err != nil {
		t.Fatal(err)
	}
	if err := fs.EnableAutoSync("/mail"); err != nil {
		t.Fatal(err)
	}
	if err := fs.MkSemDir("/fresh", "dir:/mail AND urgentword"); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("/mail/new.eml", []byte("from boss\n\nurgentword here\n")); err != nil {
		t.Fatal(err)
	}
	fresh, _ := fs.LinkTargets("/fresh")
	if len(fresh) != 1 || fresh[0] != "/mail/new.eml" {
		t.Fatalf("auto-sync targets = %v", fresh)
	}
	audit(fs, "phase 3")

	// --- Phase 4: semantic mount of a remote query system. -------------
	libFS := vfs.New()
	if err := libFS.MkdirAll("/papers"); err != nil {
		t.Fatal(err)
	}
	if err := libFS.WriteFile("/papers/deep.txt", []byte("markermany appears remotely")); err != nil {
		t.Fatal(err)
	}
	backend, err := remote.NewIndexBackend(libFS, "/")
	if err != nil {
		t.Fatal(err)
	}
	cbaSrv := remote.NewServer(backend, nil)
	cbaL, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go cbaSrv.Serve(cbaL)
	defer cbaSrv.Close()

	if err := fs.MkdirAll("/library"); err != nil {
		t.Fatal(err)
	}
	lib := remote.Dial("lib", cbaL.Addr().String())
	defer lib.Close()
	if err := fs.SemanticMount("/library", lib); err != nil {
		t.Fatal(err)
	}
	if err := fs.MkSemDir("/wide", "markermany"); err != nil {
		t.Fatal(err)
	}
	wide, _ := fs.LinkTargets("/wide")
	var sawRemote bool
	for _, target := range wide {
		if strings.HasPrefix(target, "remote://lib/") {
			sawRemote = true
		}
	}
	if !sawRemote {
		t.Fatalf("no remote results in /wide (%d targets)", len(wide))
	}
	audit(fs, "phase 4")

	// --- Phase 5: persistence round trip. -------------------------------
	var img bytes.Buffer
	if err := fs.SaveVolume(&img); err != nil {
		t.Fatal(err)
	}
	restored, err := hacfs.LoadVolume(&img, hacfs.Options{
		Transducers: map[string][]hacfs.Transducer{
			".eml": {hacfs.EmailTransducer},
			"":     {hacfs.PathTransducer},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	restoredTargets, err := restored.LinkTargets("/topic-renamed")
	if err != nil {
		t.Fatal(err)
	}
	// One target was pruned in phase 2.
	if len(restoredTargets) != len(man.TopicFiles[0])-1 {
		t.Fatalf("restored targets = %d, want %d", len(restoredTargets), len(man.TopicFiles[0])-1)
	}
	audit(restored, "phase 5")

	// --- Phase 6: serve the volume; a coworker mounts and browses. -----
	volSrv := remotefs.NewServer(fs, nil)
	volL, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go volSrv.Serve(volL)
	defer volSrv.Close()

	coworkerUnder := hacfs.NewMemFS()
	coworker := hacfs.NewVolumeOver(coworkerUnder, hacfs.Options{})
	if err := coworker.MkdirAll("/peer"); err != nil {
		t.Fatal(err)
	}
	if err := coworkerUnder.Mount("/peer", hacfs.DialFS(volL.Addr().String())); err != nil {
		t.Fatal(err)
	}
	peerEntries, err := coworker.ReadDir("/peer/topic-renamed")
	if err != nil || len(peerEntries) == 0 {
		t.Fatalf("coworker browse = %v, %v", peerEntries, err)
	}
	audit(coworker, "phase 6")

	// --- Phase 7: the central catalog. -----------------------------------
	catSrv := catalog.NewServer(catalog.New(), nil)
	catL, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go catSrv.Serve(catL)
	defer catSrv.Close()

	cc := catalog.Dial(catL.Addr().String())
	defer cc.Close()
	n, err := cc.Publish("owner", fs)
	if err != nil || n < 4 {
		t.Fatalf("Publish = %d, %v", n, err)
	}
	hits, err := cc.Search("markermany")
	if err != nil || len(hits) == 0 {
		t.Fatalf("catalog search = %v, %v", hits, err)
	}
	audit(fs, "final")
}

// TestManyVolumesScale exercises dozens of volumes with cross-publishes
// — a smoke test that nothing global leaks between instances.
func TestManyVolumesScale(t *testing.T) {
	cat := catalog.New()
	for i := 0; i < 20; i++ {
		fs := hac.New(vfs.New(), hac.Options{})
		dir := fmt.Sprintf("/u%02d", i)
		if err := fs.MkdirAll(dir); err != nil {
			t.Fatal(err)
		}
		if err := fs.WriteFile(dir+"/f.txt", []byte(fmt.Sprintf("token%02d shared", i))); err != nil {
			t.Fatal(err)
		}
		if _, err := fs.Reindex("/"); err != nil {
			t.Fatal(err)
		}
		if err := fs.MkSemDir("/sel", "shared"); err != nil {
			t.Fatal(err)
		}
		if _, err := cat.Publish(fmt.Sprintf("user%02d", i), fs); err != nil {
			t.Fatal(err)
		}
		if problems := fs.CheckConsistency(); len(problems) != 0 {
			t.Fatalf("volume %d inconsistent: %v", i, problems)
		}
	}
	if cat.Len() != 20 {
		t.Fatalf("catalog entries = %d", cat.Len())
	}
	hits, err := cat.Search("shared")
	if err != nil || len(hits) != 20 {
		t.Fatalf("hits = %d, %v", len(hits), err)
	}
}

// TestSchedulerWithRemoteVolume pairs the auto-reindex scheduler with a
// remote substrate: periodic passes run against a file system on the
// other side of a TCP connection.
func TestSchedulerWithRemoteVolume(t *testing.T) {
	srv := remotefs.NewServer(vfs.New(), nil)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)
	defer srv.Close()

	fs := hacfs.NewVolumeOver(hacfs.DialFS(l.Addr().String()), hacfs.Options{})
	if err := fs.MkdirAll("/d"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Reindex("/"); err != nil {
		t.Fatal(err)
	}
	if err := fs.MkSemDir("/sel", "needle"); err != nil {
		t.Fatal(err)
	}
	sched := fs.StartAutoReindex("/", time.Hour)
	defer sched.Stop()
	if err := fs.WriteFile("/d/n.txt", []byte("needle over tcp")); err != nil {
		t.Fatal(err)
	}
	if err := sched.TriggerNow(); err != nil {
		t.Fatal(err)
	}
	targets, err := fs.LinkTargets("/sel")
	if err != nil || len(targets) != 1 {
		t.Fatalf("targets = %v, %v", targets, err)
	}
}
